"""Interleaved walker-ring round loop (staged-phase block execution).

The legacy engine loops interleave all five hot-loop stages *per round*:
draw uniforms, look up the CDF table, update positions, test the target,
maybe compact.  Each stage touches the full live set once per round, so
the state machine ping-pongs between kernels with mixed control flow in
between -- ThunderRW's interleaved walker-ring design (SNIPPETS.md 3)
shows the throughput cost of exactly this shape, and its fix: stage the
work so *all* RNG draws happen back to back, then all table lookups,
then all state updates, across a ring of walker slots.

This module is that fix at block granularity: ``rounds`` consecutive
rounds of every live walk are simulated as one staged block --

1. one ``rng.random`` fill for the whole block (``2 * rounds * k``
   uniforms: fused lazy+distance draw and ring index per walk-round);
2. one batched CDF ``searchsorted`` for all ``rounds * k`` distances;
3. one ring-offset sampling + a ``cumsum`` over the round axis turning
   per-round offsets into per-round endpoints (the state update);
4. batched target detection over every ``(round, walk)`` pair;
5. one compaction per block instead of the 1-in-8 lazy scheme.

Walks that hit or get censored mid-block are simulated to the end of the
block; the resolution step then keeps each walk's *first* success not
preceded by censoring, which reproduces the sequential law exactly --
extra post-death rounds are discarded work, not bias, because a hitting
time depends only on the trajectory prefix up to the hit.  The wasted
rounds are bounded by ``rounds - 1`` per walk, amortized by block-width
kernels; ``rounds`` of 4-16 is the useful range (memory scales with
``rounds * live_walks``).

RNG-stream note: a block consumes the generator in a different *order*
than the round-by-round loop (bigger uniform batches, one direct-path
marginal call per block, tail fallbacks at block cadence), so for a
fixed seed the ring loop produces different -- statistically equivalent,
chi-square-verified in ``tests/test_ring_loop.py`` -- samples than the
legacy loop.  Determinism contracts within a mode are unchanged: fixed
seed + fixed ``ring_rounds`` is reproducible, and the Runner applies the
same ``ring_rounds`` at every worker count, so pooled runs stay
bit-identical to ``workers=0``.

The mode is off by default (``ring_rounds() == 0``); the Runner enables
it per run via :func:`set_ring_rounds` / :func:`ring_scope` (CLI:
``--ring-rounds``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Tuple

import numpy as np

from repro.engine.results import CENSORED, HittingTimeSample
from repro.engine.samplers import BatchJumpSampler
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets
from repro.telemetry.recorder import get_recorder

IntPoint = Tuple[int, int]

#: Block depth used when a caller asks for ring mode without a depth.
DEFAULT_RING_ROUNDS = 8

_ROUNDS = 0


def ring_rounds() -> int:
    """The active block depth; 0/1 means the legacy round-by-round loop."""
    return _ROUNDS


def set_ring_rounds(rounds: int) -> int:
    """Set the block depth process-wide; returns the previous value."""
    global _ROUNDS
    rounds = int(rounds)
    if rounds < 0:
        raise ValueError(f"ring_rounds must be non-negative, got {rounds}")
    previous = _ROUNDS
    _ROUNDS = rounds
    return previous


@contextmanager
def ring_scope(rounds: int) -> Iterator[None]:
    """Enable the ring loop inside a ``with`` block (tests, Runner)."""
    previous = set_ring_rounds(rounds)
    try:
        yield
    finally:
        set_ring_rounds(previous)


def _record(engine: str, n: int, steps: int, seconds: float) -> None:
    from repro.engine.vectorized import _record_engine_sample

    _record_engine_sample(engine, n, steps, seconds)


def _block_geometry(
    sampler: BatchJumpSampler,
    rng: np.random.Generator,
    idx: np.ndarray,
    pos: np.ndarray,
    rounds: int,
    prof,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stages 1-3 shared by all engines: uniforms, distances, endpoints.

    Returns ``(d, step, starts, ends)``, each with a leading round axis:
    ``d``/``step`` are ``(rounds, k)``, ``starts``/``ends`` are
    ``(rounds, k, 2)`` with ``starts[0] == pos`` and
    ``starts[r] == ends[r - 1]``.
    """
    k = idx.size
    total = rounds * k
    u = np.empty(2 * total, dtype=np.float64)
    rng.random(out=u)
    if prof is not None:
        prof.lap("rng")
    tiled = np.tile(idx, rounds)
    d_flat = sampler.sample(rng, tiled, u=u[:total], out=np.empty(total, np.int64))
    d = d_flat.reshape(rounds, k)
    if prof is not None:
        prof.lap("cdf_lookup")
    off = sample_ring_offsets(
        d_flat, rng, u=u[total:], out=np.empty((total, 2), np.int64)
    )
    ends = np.cumsum(off.reshape(rounds, k, 2), axis=0)
    ends += pos[None, :, :]
    starts = np.empty_like(ends)
    starts[0] = pos
    starts[1:] = ends[:-1]
    step = np.maximum(d, 1)
    return d, step, starts, ends


def _resolve_first_valid(
    success: np.ndarray, hit_step: np.ndarray, elapsed_after: np.ndarray, horizon: int
) -> Tuple[np.ndarray, np.ndarray]:
    """First success per column not preceded by censoring.

    ``success``/``hit_step``/``elapsed_after`` are ``(rounds, k)``.
    Returns ``(valid_cols, valid_times)``: the column indices whose first
    success at round ``r0`` happened before censoring (``elapsed_after``
    is nondecreasing over rounds, so "no earlier round was censored"
    reduces to ``elapsed_after[r0 - 1] < horizon``), and their times.
    """
    cols = np.flatnonzero(success.any(axis=0))
    if not cols.size:
        return cols, cols.astype(np.int64)
    r0 = success[:, cols].argmax(axis=0)
    ok = np.ones(cols.size, dtype=bool)
    has_prev = r0 > 0
    ok[has_prev] = elapsed_after[r0[has_prev] - 1, cols[has_prev]] < horizon
    return cols[ok], hit_step[r0[ok], cols[ok]]


def walk_hitting_times_ring(
    sampler: BatchJumpSampler,
    target: IntPoint,
    *,
    horizon: int,
    n: int,
    rng: np.random.Generator,
    start: IntPoint,
    detect_during_jump: bool,
    rounds: int,
) -> HittingTimeSample:
    """Ring-loop twin of :func:`repro.engine.vectorized.walk_hitting_times`.

    Arguments are pre-validated by the public engine (which also handles
    the start-on-target case before delegating here).
    """
    n_walks = int(n)
    tx, ty = int(target[0]), int(target[1])
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    idx = np.arange(n_walks)
    pos = np.empty((n_walks, 2), dtype=np.int64)
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    elapsed = np.zeros(n_walks, dtype=np.int64)
    recorder = get_recorder()
    track = recorder.enabled
    tick = recorder.tick
    prof = recorder.profile
    steps_simulated = 0
    started = time.perf_counter() if track else 0.0

    while idx.size:
        tick()
        if prof is not None:
            prof.start()
        d, step, starts, ends = _block_geometry(sampler, rng, idx, pos, rounds, prof)
        elapsed_after = np.cumsum(step, axis=0)
        elapsed_after += elapsed[None, :]
        if track:
            steps_simulated += int(step.sum())
        if prof is not None:
            prof.lap("state_update")
        if detect_during_jump:
            m = np.abs(tx - starts[..., 0]) + np.abs(ty - starts[..., 1])
            reach = m <= d
            hit = np.zeros(d.shape, dtype=bool)
            rr, cc = np.nonzero(reach)
            if rr.size:
                nodes = sample_direct_path_nodes(
                    starts[rr, cc], ends[rr, cc], m[rr, cc], rng
                )
                hit[rr, cc] = (nodes[:, 0] == tx) & (nodes[:, 1] == ty)
            hit_step = (elapsed_after - step) + m
        else:
            hit = (ends[..., 0] == tx) & (ends[..., 1] == ty)
            hit_step = elapsed_after
        success = hit & (hit_step <= horizon)
        if prof is not None:
            prof.lap("target_check")
        valid, valid_times = _resolve_first_valid(
            success, hit_step, elapsed_after, horizon
        )
        times[idx[valid]] = valid_times
        dead = np.zeros(idx.size, dtype=bool)
        dead[valid] = True
        dead |= elapsed_after[-1] >= horizon
        keep = ~dead
        idx = idx[keep]
        pos = ends[-1][keep]
        elapsed = elapsed_after[-1][keep]
        if prof is not None:
            prof.lap("compaction")

    if track:
        sampler.flush_jump_accounting()
        _record("walk", n_walks, steps_simulated, time.perf_counter() - started)
    if prof is not None:
        prof.finish("walk")
    return HittingTimeSample(times=times, horizon=horizon)


def flight_hitting_times_ring(
    sampler: BatchJumpSampler,
    target: IntPoint,
    *,
    horizon: int,
    n: int,
    rng: np.random.Generator,
    start: IntPoint,
    rounds: int,
) -> HittingTimeSample:
    """Ring-loop twin of :func:`repro.engine.vectorized.flight_hitting_times`.

    The block depth is clipped to the remaining jump budget, so no round
    past the horizon is ever simulated and every in-block hit is valid
    (a flight is censored only by the jump count).
    """
    n_flights = int(n)
    horizon_jumps = int(horizon)
    tx, ty = int(target[0]), int(target[1])
    times = np.full(n_flights, CENSORED, dtype=np.int64)
    idx = np.arange(n_flights)
    pos = np.empty((n_flights, 2), dtype=np.int64)
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    recorder = get_recorder()
    track = recorder.enabled
    tick = recorder.tick
    prof = recorder.profile
    jumps_simulated = 0
    jumps_done = 0
    started = time.perf_counter() if track else 0.0

    while idx.size and jumps_done < horizon_jumps:
        tick()
        if prof is not None:
            prof.start()
        r_eff = min(rounds, horizon_jumps - jumps_done)
        d, _step, _starts, ends = _block_geometry(sampler, rng, idx, pos, r_eff, prof)
        if track:
            jumps_simulated += int(d.size)
        if prof is not None:
            prof.lap("state_update")
        hit = (ends[..., 0] == tx) & (ends[..., 1] == ty)
        if prof is not None:
            prof.lap("target_check")
        cols = np.flatnonzero(hit.any(axis=0))
        if cols.size:
            r0 = hit[:, cols].argmax(axis=0)
            times[idx[cols]] = jumps_done + r0 + 1
        keep = np.ones(idx.size, dtype=bool)
        keep[cols] = False
        idx = idx[keep]
        pos = ends[-1][keep]
        jumps_done += r_eff
        if prof is not None:
            prof.lap("compaction")

    if track:
        sampler.flush_jump_accounting()
        _record("flight", n_flights, jumps_simulated, time.perf_counter() - started)
    if prof is not None:
        prof.finish("flight")
    return HittingTimeSample(times=times, horizon=horizon_jumps)


def ball_hitting_times_ring(
    sampler: BatchJumpSampler,
    center: IntPoint,
    *,
    radius: int,
    horizon: int,
    n: int,
    rng: np.random.Generator,
    start: IntPoint,
    detect_during_jump: bool,
    rounds: int,
) -> HittingTimeSample:
    """Ring-loop twin of :func:`repro.engine.ball_targets.ball_hitting_times`.

    Mid-jump ball detection flattens every candidate ``(round, walk,
    ring)`` triple of the block into one direct-path marginal call; rings
    ascend within each ``(round, walk)`` group, so the first in-ball
    occurrence per group is its first-entry ring, exactly as in the
    per-round loop.
    """
    n_walks = int(n)
    cx, cy = int(center[0]), int(center[1])
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    idx = np.arange(n_walks)
    pos = np.empty((n_walks, 2), dtype=np.int64)
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    elapsed = np.zeros(n_walks, dtype=np.int64)
    recorder = get_recorder()
    track = recorder.enabled
    tick = recorder.tick
    prof = recorder.profile
    steps_simulated = 0
    started = time.perf_counter() if track else 0.0

    while idx.size:
        tick()
        if prof is not None:
            prof.start()
        d, step, starts, ends = _block_geometry(sampler, rng, idx, pos, rounds, prof)
        elapsed_after = np.cumsum(step, axis=0)
        elapsed_after += elapsed[None, :]
        if track:
            steps_simulated += int(step.sum())
        if prof is not None:
            prof.lap("state_update")
        if detect_during_jump:
            m = np.abs(cx - starts[..., 0]) + np.abs(cy - starts[..., 1])
            # Candidate crossing rings per (round, walk): see the legacy
            # engine.  Post-death rounds can sit inside the ball (m <=
            # radius); their spurious "hits" are discarded by the
            # first-valid resolution, so no alive mask is needed here.
            low = np.maximum(m - radius, 1)
            high = np.minimum(d, m + radius)
            counts = np.maximum(high - low + 1, 0).ravel()
            hit = np.zeros(d.size, dtype=bool)
            hit_step = np.zeros(d.size, dtype=np.int64)
            groups = np.flatnonzero(counts)
            if groups.size:
                reps = counts[groups]
                total = int(reps.sum())
                group_rep = np.repeat(groups, reps)
                block_starts = np.cumsum(reps) - reps
                intra = np.arange(total) - np.repeat(block_starts, reps)
                ring_rep = low.ravel()[group_rep] + intra
                flat_starts = starts.reshape(-1, 2)
                flat_ends = ends.reshape(-1, 2)
                nodes = sample_direct_path_nodes(
                    flat_starts[group_rep], flat_ends[group_rep], ring_rep, rng
                )
                inside = (
                    np.abs(nodes[:, 0] - cx) + np.abs(nodes[:, 1] - cy)
                ) <= radius
                where_inside = np.flatnonzero(inside)
                if where_inside.size:
                    first_groups, first_at = np.unique(
                        group_rep[where_inside], return_index=True
                    )
                    hit[first_groups] = True
                    hit_step[first_groups] = (
                        elapsed_after - step
                    ).ravel()[first_groups] + ring_rep[where_inside[first_at]]
            hit = hit.reshape(d.shape)
            hit_step = hit_step.reshape(d.shape)
        else:
            end_distance = np.abs(ends[..., 0] - cx) + np.abs(ends[..., 1] - cy)
            hit = end_distance <= radius
            hit_step = elapsed_after
        success = hit & (hit_step <= horizon)
        if prof is not None:
            prof.lap("target_check")
        valid, valid_times = _resolve_first_valid(
            success, hit_step, elapsed_after, horizon
        )
        times[idx[valid]] = valid_times
        dead = np.zeros(idx.size, dtype=bool)
        dead[valid] = True
        dead |= elapsed_after[-1] >= horizon
        keep = ~dead
        idx = idx[keep]
        pos = ends[-1][keep]
        elapsed = elapsed_after[-1][keep]
        if prof is not None:
            prof.lap("compaction")

    if track:
        sampler.flush_jump_accounting()
        _record("ball", n_walks, steps_simulated, time.perf_counter() - started)
    if prof is not None:
        prof.finish("ball")
    return HittingTimeSample(times=times, horizon=horizon)
