"""Hitting times for *ball* targets (radius-D food patches, cf. [18]).

The paper's target is a single node; the intermittent-search model of
[18] (Section 2) instead places a target of arbitrary *diameter D* and
only lets the walk detect it at jump endpoints.  The combination matters:
footnote 3 of the paper notes that with unit targets or with non-
intermittent detection "all exponents alpha >= 2 (resp. <= 2) are optimal
as well" -- i.e. [18]'s uniqueness of the Cauchy exponent hinges on both
ingredients.  This engine provides the missing piece: exact hitting times
of the Manhattan ball ``B_radius(center)`` under both detection
semantics, so the EXT-DIAM experiment can measure how target size shifts
the exponent landscape.

Exact mid-jump detection for a ball: a phase from ``u`` to ``v`` (length
``d``) can enter ``B_r(w)`` only while crossing rings ``i`` of ``u`` with
``m - r <= i <= m + r`` (``m = ||w - u||_1``), because a node at ring
``i`` has distance at least ``|m - i|`` from ``w``.  Conditioned on
``(u, v)``, path positions at distinct rings are independent uniform
tie-breaks (see :mod:`repro.lattice.direct_path`), so sampling the <= 2r+1
relevant ring marginals jointly-independently and testing membership is
exact; the hit step is the *first* crossing ring inside the ball.
"""

from __future__ import annotations

import time
from typing import Tuple, Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine._compat import legacy_api
from repro.engine.results import CENSORED, HittingTimeSample
from repro.engine.ring import ball_hitting_times_ring, ring_rounds
from repro.engine.samplers import BatchJumpSampler
from repro.engine.vectorized import _as_sampler, _record_engine_sample
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets
from repro.rng import SeedLike, as_generator
from repro.telemetry.recorder import get_recorder

IntPoint = Tuple[int, int]


@legacy_api(
    positional=("radius", "horizon", "n", "rng", "start", "detect_during_jump"),
    renames={"n_walks": "n"},
)
def ball_hitting_times(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    center: IntPoint,
    *,
    radius: int,
    horizon: int,
    n: int,
    rng: SeedLike = None,
    start: IntPoint = (0, 0),
    detect_during_jump: bool = True,
) -> HittingTimeSample:
    """Hitting times of the ball ``B_radius(center)`` for ``n`` walks.

    ``radius = 0`` recovers the point-target engine.  With
    ``detect_during_jump=False`` only phase endpoints are tested (the
    intermittent model of [18]).
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    n_walks = int(n)
    cx, cy = int(center[0]), int(center[1])
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    start_distance = abs(cx - start[0]) + abs(cy - start[1])
    if start_distance <= radius:
        return HittingTimeSample(times=np.zeros(n_walks, np.int64), horizon=horizon)
    rounds = ring_rounds()
    if rounds > 1:
        return ball_hitting_times_ring(
            sampler,
            (cx, cy),
            radius=radius,
            horizon=horizon,
            n=n_walks,
            rng=rng,
            start=(int(start[0]), int(start[1])),
            detect_during_jump=detect_during_jump,
            rounds=rounds,
        )

    # Same compacted state machine and preallocated round buffers as
    # `walk_hitting_times`: row j belongs to walk idx[j], dead rows jump
    # with d = 0 until >= 1/8 of rows died, positions ping-pong between
    # two blocks, and each round draws all its uniforms in one call.
    idx = np.arange(n_walks)
    pos_buf = np.empty((n_walks, 2), dtype=np.int64)
    end_buf = np.empty((n_walks, 2), dtype=np.int64)
    d_buf = np.empty(n_walks, dtype=np.int64)
    off_buf = np.empty((n_walks, 2), dtype=np.int64)
    u_buf = np.empty(2 * n_walks, dtype=np.float64)
    pos = pos_buf[:n_walks]
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    elapsed = np.zeros(n_walks, dtype=np.int64)
    alive = np.ones(n_walks, dtype=bool)
    n_dead = 0
    recorder = get_recorder()
    track = recorder.enabled
    tick = recorder.tick
    prof = recorder.profile
    steps_simulated = 0
    started = time.perf_counter() if track else 0.0

    while idx.size:
        tick()
        if prof is not None:
            prof.start()
        k = idx.size
        uniforms = u_buf[: 2 * k]
        rng.random(out=uniforms)
        if prof is not None:
            prof.lap("rng")
        d = sampler.sample(rng, idx, u=uniforms[:k], out=d_buf[:k])
        d[~alive] = 0  # dead rows are carried until the next compaction
        if track:
            steps_simulated += int(np.maximum(d, 1)[alive].sum())
        if prof is not None:
            prof.lap("cdf_lookup")
        off = sample_ring_offsets(d, rng, u=uniforms[k:], out=off_buf[:k])
        v = np.add(pos, off, out=end_buf[:k])
        if prof is not None:
            prof.lap("state_update")
        m = np.abs(cx - pos[:, 0]) + np.abs(cy - pos[:, 1])
        if detect_during_jump:
            hit = np.zeros(k, dtype=bool)
            hit_step = np.zeros(k, dtype=np.int64)
            # Rings i in [max(m - radius, 1), min(d, m + radius)] can
            # touch the ball.  Every live row has m > radius (a walk
            # ending a phase inside the ball always detects it at ring d,
            # where the marginal is the endpoint itself), and dead rows
            # have d = 0, so their count comes out non-positive.
            low = np.maximum(m - radius, 1)
            high = np.minimum(d, m + radius)
            counts = np.maximum(high - low + 1, 0)
            rows = np.flatnonzero(counts)
            if rows.size:
                # Flatten all (row, ring) pairs into one direct-path
                # marginal call.  Marginals at distinct rings of one phase
                # are jointly independent, so sampling every candidate
                # ring at once and keeping each row's *first* in-ball ring
                # has exactly the law of nearest-first sequential testing.
                reps = counts[rows]
                total = int(reps.sum())
                row_rep = np.repeat(rows, reps)
                block_starts = np.cumsum(reps) - reps
                intra = np.arange(total) - np.repeat(block_starts, reps)
                ring_rep = low[row_rep] + intra
                nodes = sample_direct_path_nodes(
                    pos[row_rep], v[row_rep], ring_rep, rng
                )
                inside = (
                    np.abs(nodes[:, 0] - cx) + np.abs(nodes[:, 1] - cy)
                ) <= radius
                if np.any(inside):
                    where_inside = np.flatnonzero(inside)
                    # Rings ascend within each row's block, so the first
                    # occurrence per row is its first-entry ring.
                    first_rows, first_at = np.unique(
                        row_rep[where_inside], return_index=True
                    )
                    hit[first_rows] = True
                    hit_step[first_rows] = (
                        elapsed[first_rows] + ring_rep[where_inside[first_at]]
                    )
        else:
            end_distance = np.abs(v[:, 0] - cx) + np.abs(v[:, 1] - cy)
            # Dead rows sit where they died (possibly inside the ball
            # under a hit at step > horizon); mask them out.
            hit = alive & (end_distance <= radius)
            hit_step = elapsed + np.maximum(d, 1)
        success = hit & (hit_step <= horizon)
        if np.any(success):
            times[idx[success]] = hit_step[success]
        if prof is not None:
            prof.lap("target_check")
        elapsed += np.maximum(d, 1)
        pos_buf, end_buf = end_buf, pos_buf
        pos = v
        died = alive & (success | (elapsed >= horizon))
        if np.any(died):
            alive &= ~died
            n_dead += int(died.sum())
            if n_dead * 8 >= idx.size:
                idx = idx[alive]
                survivors = pos[alive]
                pos = pos_buf[: idx.size]
                pos[:] = survivors
                elapsed = elapsed[alive]
                alive = np.ones(idx.size, dtype=bool)
                n_dead = 0
        if prof is not None:
            prof.lap("compaction")

    if track:
        sampler.flush_jump_accounting()
        _record_engine_sample(
            "ball", n_walks, steps_simulated, time.perf_counter() - started
        )
    if prof is not None:
        prof.finish("ball")
    return HittingTimeSample(times=times, horizon=horizon)
