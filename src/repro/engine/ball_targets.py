"""Hitting times for *ball* targets (radius-D food patches, cf. [18]).

The paper's target is a single node; the intermittent-search model of
[18] (Section 2) instead places a target of arbitrary *diameter D* and
only lets the walk detect it at jump endpoints.  The combination matters:
footnote 3 of the paper notes that with unit targets or with non-
intermittent detection "all exponents alpha >= 2 (resp. <= 2) are optimal
as well" -- i.e. [18]'s uniqueness of the Cauchy exponent hinges on both
ingredients.  This engine provides the missing piece: exact hitting times
of the Manhattan ball ``B_radius(center)`` under both detection
semantics, so the EXT-DIAM experiment can measure how target size shifts
the exponent landscape.

Exact mid-jump detection for a ball: a phase from ``u`` to ``v`` (length
``d``) can enter ``B_r(w)`` only while crossing rings ``i`` of ``u`` with
``m - r <= i <= m + r`` (``m = ||w - u||_1``), because a node at ring
``i`` has distance at least ``|m - i|`` from ``w``.  Conditioned on
``(u, v)``, path positions at distinct rings are independent uniform
tie-breaks (see :mod:`repro.lattice.direct_path`), so sampling the <= 2r+1
relevant ring marginals jointly-independently and testing membership is
exact; the hit step is the *first* crossing ring inside the ball.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine._compat import legacy_api
from repro.engine.results import CENSORED, HittingTimeSample
from repro.engine.samplers import BatchJumpSampler
from repro.engine.vectorized import _as_sampler
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]


@legacy_api(
    positional=("radius", "horizon", "n", "rng", "start", "detect_during_jump"),
    renames={"n_walks": "n"},
)
def ball_hitting_times(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    center: IntPoint,
    *,
    radius: int,
    horizon: int,
    n: int,
    rng: SeedLike = None,
    start: IntPoint = (0, 0),
    detect_during_jump: bool = True,
) -> HittingTimeSample:
    """Hitting times of the ball ``B_radius(center)`` for ``n`` walks.

    ``radius = 0`` recovers the point-target engine.  With
    ``detect_during_jump=False`` only phase endpoints are tested (the
    intermittent model of [18]).
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    n_walks = int(n)
    cx, cy = int(center[0]), int(center[1])
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    start_distance = abs(cx - start[0]) + abs(cy - start[1])
    if start_distance <= radius:
        return HittingTimeSample(times=np.zeros(n_walks, np.int64), horizon=horizon)

    pos = np.empty((n_walks, 2), dtype=np.int64)
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    elapsed = np.zeros(n_walks, dtype=np.int64)
    active = np.arange(n_walks)

    while active.size:
        d = sampler.sample(rng, active)
        offsets = sample_ring_offsets(d, rng)
        u = pos[active]
        v = u + offsets
        m = np.abs(cx - u[:, 0]) + np.abs(cy - u[:, 1])
        if detect_during_jump:
            hit = np.zeros(active.shape[0], dtype=bool)
            hit_step = np.zeros(active.shape[0], dtype=np.int64)
            # Rings i in [m - radius, min(d, m + radius)] can touch the
            # ball; test them nearest-first so the recorded step is the
            # first entry.
            low = np.maximum(m - radius, 1)
            high = np.minimum(d, m + radius)
            reachable = low <= high
            if np.any(reachable):
                rows = np.flatnonzero(reachable)
                for offset_index in range(2 * radius + 1):
                    ring = low[rows] + offset_index
                    valid = ring <= high[rows]
                    test_rows = rows[valid & ~hit[rows]]
                    if test_rows.size == 0:
                        continue
                    nodes = sample_direct_path_nodes(
                        u[test_rows], v[test_rows], (low + offset_index)[test_rows], rng
                    )
                    inside = (
                        np.abs(nodes[:, 0] - cx) + np.abs(nodes[:, 1] - cy)
                    ) <= radius
                    newly = test_rows[inside]
                    hit[newly] = True
                    hit_step[newly] = elapsed[active[newly]] + (low + offset_index)[newly]
        else:
            end_distance = np.abs(v[:, 0] - cx) + np.abs(v[:, 1] - cy)
            hit = end_distance <= radius
            hit_step = elapsed[active] + np.maximum(d, 1)
        success = hit & (hit_step <= horizon)
        times[active[success]] = hit_step[success]
        elapsed[active] += np.maximum(d, 1)
        pos[active] = v
        survivors = ~success & (elapsed[active] < horizon)
        active = active[survivors]
    sampler.flush_jump_accounting()
    return HittingTimeSample(times=times, horizon=horizon)
