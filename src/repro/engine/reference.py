"""Reference (object-level) Monte-Carlo estimators.

These estimators drive the exact-but-slow processes of :mod:`repro.walks`
step by step.  They exist to cross-validate the vectorized engines: the
test suite checks that, on small instances, the hitting-time distributions
produced by :func:`repro.engine.vectorized.walk_hitting_times` and by
:func:`reference_walk_hitting_times` agree statistically.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.engine._compat import legacy_api
from repro.engine.results import CENSORED, HittingTimeSample
from repro.rng import SeedLike, as_generator, spawn
from repro.walks.base import JumpProcess

IntPoint = Tuple[int, int]


@legacy_api(positional=("horizon", "n", "rng"), renames={"n_walks": "n"})
def reference_hitting_times(
    make_process: Callable[[np.random.Generator], JumpProcess],
    target: IntPoint,
    *,
    horizon: int,
    n: int,
    rng: SeedLike = None,
) -> HittingTimeSample:
    """Hitting times of ``n`` processes, advanced one step at a time.

    Parameters
    ----------
    make_process:
        Factory mapping a generator to a fresh :class:`JumpProcess`
        (e.g. ``lambda g: LevyWalk(2.5, rng=g)``).
    target, horizon, n, rng:
        As in :func:`repro.engine.vectorized.walk_hitting_times`.
    """
    rng = as_generator(rng)
    n_walks = int(n)
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    for i, child in enumerate(spawn(rng, n_walks)):
        process = make_process(child)
        tau = process.hitting_time(target, horizon)
        if tau is not None:
            times[i] = tau
    return HittingTimeSample(times=times, horizon=horizon)
