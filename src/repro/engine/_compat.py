"""Deprecation shims for the pre-1.1 engine entry-point spellings.

The 1.1 API redesign unified the ten-odd engine entry points on one
convention:

* the *time budget* is always called ``horizon`` (previously also
  ``horizon_jumps``, ``n_jumps``, ``n_steps``) and the *sample size* is
  always called ``n`` (previously ``n_walks`` / ``n_flights``);
* everything after the structural lead arguments (the jump law and the
  target/nodes, where present) is keyword-only, so call sites read as
  declarations and adding parameters can never silently reorder calls.

:func:`legacy_api` wraps a unified function so the old spellings keep
working for one release: legacy positional arguments and legacy keyword
names are remapped onto the new signature, and every such call emits
exactly **one** :class:`DeprecationWarning` that lists all the legacy
aspects of the call and shows the unified signature.  New-style calls
pass straight through with no warning (and near-zero overhead: one
length check and one dict scan).
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Callable, Dict, Optional, Sequence


def legacy_api(
    *, positional: Sequence[str] = (), renames: Optional[Dict[str, str]] = None
) -> Callable:
    """Let a keyword-only engine entry point accept its legacy spellings.

    Parameters
    ----------
    positional:
        New-spelling names of the keyword-only parameters that legacy
        callers used to pass *positionally* after the lead arguments, in
        their legacy order (e.g. ``("horizon", "n", "rng", "start")``).
    renames:
        Mapping of legacy keyword name -> unified keyword name
        (e.g. ``{"n_walks": "n", "horizon_jumps": "horizon"}``).

    The decorated function must follow the unified convention: its lead
    parameters are POSITIONAL_OR_KEYWORD, everything else KEYWORD_ONLY.
    A call using any legacy spelling (extra positionals, old keyword
    names, or both) triggers one combined DeprecationWarning.
    """
    positional = tuple(positional)
    renames = dict(renames or {})

    def decorate(func: Callable) -> Callable:
        signature = inspect.signature(func)
        lead = [
            parameter.name
            for parameter in signature.parameters.values()
            if parameter.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
        ]
        n_lead = len(lead)
        max_positional = n_lead + len(positional)

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            complaints = []
            if len(args) > n_lead:
                if len(args) > max_positional:
                    raise TypeError(
                        f"{func.__name__}() takes at most {max_positional} "
                        f"positional arguments ({len(args)} given)"
                    )
                extras = args[n_lead:]
                mapped = positional[: len(extras)]
                for name, value in zip(mapped, extras):
                    if name in kwargs:
                        raise TypeError(
                            f"{func.__name__}() got multiple values for "
                            f"argument {name!r}"
                        )
                    kwargs[name] = value
                args = args[:n_lead]
                complaints.append(
                    "positional " + "/".join(mapped) + " (now keyword-only)"
                )
            legacy_keys = [old for old in renames if old in kwargs]
            for old in legacy_keys:
                new = renames[old]
                if new in kwargs:
                    raise TypeError(
                        f"{func.__name__}() got both legacy {old!r} and its "
                        f"replacement {new!r}"
                    )
                kwargs[new] = kwargs.pop(old)
            if legacy_keys:
                complaints.append(
                    ", ".join(
                        f"keyword {old!r} (use {renames[old]!r})"
                        for old in legacy_keys
                    )
                )
            if complaints:
                warnings.warn(
                    f"{func.__name__}: legacy call spelling -- "
                    + "; ".join(complaints)
                    + f".  The unified signature is {func.__name__}{signature}",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return func(*args, **kwargs)

        return wrapper

    return decorate
