"""Baseline search strategies the paper is compared against.

* :class:`~repro.baselines.spiral_search.SpiralSearch` -- the
  Feinerman-Korman style doubling spiral probes (knows ``k``); near the
  universal lower bound, the "centralized reference".
* :class:`~repro.baselines.srw_search.SRWSearch` -- parallel lazy simple
  random walks (the ``alpha -> inf`` / Brownian extreme).
* :class:`~repro.baselines.ballistic_search.BallisticSpraySearch` --
  straight walkers in random directions (the ``alpha -> 1`` extreme).

The universal ``Omega(l^2/k + l)`` lower bound lives in
:func:`repro.core.ants.universal_lower_bound`.
"""

from repro.baselines.ballistic_search import BallisticSpraySearch, ray_ring_nodes
from repro.baselines.spiral_search import SpiralSearch
from repro.baselines.srw_search import SRWSearch

__all__ = [
    "SpiralSearch",
    "SRWSearch",
    "BallisticSpraySearch",
    "ray_ring_nodes",
]
