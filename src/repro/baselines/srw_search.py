"""Parallel simple-random-walk search -- the diffusive baseline.

``k`` lazy simple random walks from the origin.  This is the ``alpha ->
inf`` limit of the Levy strategies (Section 2) and the natural "Brownian"
comparison of the Levy foraging hypothesis.  A single SRW needs
``Theta(l^2 log l)``-scale time to find a target at distance ``l`` and
even then only succeeds with ``1/polylog`` probability per attempt;
parallelism helps, but each walk keeps re-covering the same
neighbourhood, so SRW search loses polynomially to tuned Levy walks for
most ``(k, l)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.distributions.unit import UnitJumpDistribution
from repro.engine.results import HittingTimeSample, group_minimum
from repro.engine.vectorized import walk_hitting_times
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]


class SRWSearch:
    """``k`` parallel lazy simple random walks."""

    def __init__(self, k: int, laziness: float = 0.5) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self.distribution = UnitJumpDistribution(lazy_probability=laziness)

    def agent_hitting_times(
        self,
        target: IntPoint,
        horizon: int,
        n_agents: int,
        rng: SeedLike = None,
    ) -> HittingTimeSample:
        """Censored hitting times of independent single walks."""
        return walk_hitting_times(
            self.distribution,
            target=target,
            horizon=horizon,
            n=n_agents,
            rng=rng,
        )

    def sample_parallel_hitting_times(
        self,
        target: IntPoint,
        n_runs: int,
        horizon: Optional[int] = None,
        rng: SeedLike = None,
    ) -> HittingTimeSample:
        """Parallel (min over ``k``) hitting times for ``n_runs`` runs."""
        rng = as_generator(rng)
        if horizon is None:
            l = abs(int(target[0])) + abs(int(target[1]))
            horizon = 4 * (l * l + l)
        sample = self.agent_hitting_times(
            target, horizon, n_agents=n_runs * self.k, rng=rng
        )
        return HittingTimeSample(
            times=group_minimum(sample.times, self.k), horizon=horizon
        )
