"""Ballistic spray search -- the straight-line extreme.

``k`` agents each pick an independent uniformly random direction and walk
straight forever (the idealization of the ``alpha -> 1`` Levy regime,
:class:`repro.walks.ballistic.BallisticWalk`).  An agent crosses the ring
``R_l`` exactly once, at time ``l``, at a single node that is roughly
uniform among the ``4l`` ring nodes; so the parallel hitting time is
``l`` with probability ``~ 1 - (1 - Theta(1/l))^k`` and infinite
otherwise.  This matches Corollary 5.3: ballistic strategies are optimal
iff ``k = omega(l log^2 l)`` -- with fewer agents they usually *never*
find the target, the failure mode that rules them out as a universal
strategy.

The implementation is exact and O(1) per agent: it samples the angle and
evaluates the closed-form ray-ring crossing node.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.engine.results import CENSORED, HittingTimeSample, group_minimum
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]


def ray_ring_nodes(angles: np.ndarray, ring: int) -> np.ndarray:
    """Nodes where rays with the given angles cross the ring ``R_ring(0)``.

    Vectorized counterpart of :func:`repro.walks.ballistic.ray_node`.
    """
    cx = np.cos(angles)
    cy = np.sin(angles)
    norm = np.abs(cx) + np.abs(cy)
    x_abs = np.round(ring * np.abs(cx) / norm).astype(np.int64)
    y_abs = ring - x_abs
    x = np.where(cx >= 0, x_abs, -x_abs)
    y = np.where(cy >= 0, y_abs, -y_abs)
    return np.stack([x, y], axis=1)


class BallisticSpraySearch:
    """``k`` straight walkers in independent uniform directions."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)

    def agent_hitting_times(
        self,
        target: IntPoint,
        horizon: int,
        n_agents: int,
        rng: SeedLike = None,
    ) -> HittingTimeSample:
        """Censored hitting times: ``l`` on a cross, CENSORED otherwise."""
        rng = as_generator(rng)
        tx, ty = int(target[0]), int(target[1])
        l = abs(tx) + abs(ty)
        times = np.full(n_agents, CENSORED, dtype=np.int64)
        if l == 0:
            return HittingTimeSample(times=np.zeros(n_agents, np.int64), horizon=horizon)
        if l <= horizon:
            angles = rng.uniform(0.0, 2.0 * math.pi, size=n_agents)
            nodes = ray_ring_nodes(angles, l)
            hit = (nodes[:, 0] == tx) & (nodes[:, 1] == ty)
            times[hit] = l
        return HittingTimeSample(times=times, horizon=horizon)

    def sample_parallel_hitting_times(
        self,
        target: IntPoint,
        n_runs: int,
        horizon: Optional[int] = None,
        rng: SeedLike = None,
    ) -> HittingTimeSample:
        """Parallel (min over ``k``) hitting times for ``n_runs`` runs."""
        rng = as_generator(rng)
        if horizon is None:
            l = abs(int(target[0])) + abs(int(target[1]))
            horizon = 4 * (l * l + l)
        sample = self.agent_hitting_times(
            target, horizon, n_agents=n_runs * self.k, rng=rng
        )
        return HittingTimeSample(
            times=group_minimum(sample.times, self.k), horizon=horizon
        )
