"""Doubling spiral search -- the knows-``k`` reference algorithm.

The optimal ANTS algorithms of Feinerman and Korman [14] (paper Section 2)
"repeatedly execute the following steps: walk to a random location in a
ball of a certain radius (chosen according to the algorithm specifics),
perform a spiral movement of the same radius as the ball's, then return to
the origin."  This module implements that scheme in the *centralized*
setting where ``k`` is known (the setting against which the paper measures
its uniform algorithm: "optimal ... among all possible algorithms (even
centralized ones that know k)"):

* Probes are scheduled with the classic restart-doubling schedule: phase
  ``p = 1, 2, ...`` runs probes at radii ``2^1, 2^2, ..., 2^p``, so every
  scale is revisited with geometrically growing investment -- the standard
  trick when the target distance ``l`` is unknown.
* A probe at radius ``D`` walks to a uniform node ``c`` of ``B_D(0)``,
  spirals over the box ``Q_s(c)`` with ``s = ceil(2 D / sqrt(k))``, and
  walks back.  With ``k`` agents probing independently, each probe at
  scale ``D >= l`` finds the target with probability ``~ (2s+1)^2 /
  |B_D| = Theta(1/k)``, so ``k`` agents succeed per sweep with constant
  probability while a probe costs only ``O(D + D^2/k)`` steps -- giving
  the optimal ``O((l^2/k + l) polylog)`` parallel time.

The simulation is *exact at probe granularity*: spiral hit times come
from the closed-form square-spiral index (no lattice stepping), so
arbitrarily large instances simulate in microseconds per probe.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.engine.results import CENSORED, HittingTimeSample, group_minimum
from repro.lattice.rings import ball_size, sample_ring_offsets
from repro.lattice.spiral import spiral_index, steps_to_cover_box
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]


def _doubling_schedule() -> Iterator[int]:
    """Yield probe radii 2; 2,4; 2,4,8; ... (restart doubling)."""
    phase = 1
    while True:
        for j in range(1, phase + 1):
            yield 2**j
        phase += 1


def _sample_ball_radii(
    d: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Radii of uniform nodes of ``B_d(0)``: ``P(r) = |R_r| / |B_d|``."""
    sizes = np.array([1] + [4 * r for r in range(1, d + 1)], dtype=float)
    return rng.choice(d + 1, size=n, p=sizes / ball_size(d))


class SpiralSearch:
    """``k`` spiral-probing agents with known ``k`` (no communication).

    Parameters
    ----------
    k:
        Number of agents; used to size each probe's spiral so that the
        per-sweep discovery probability is constant while sweep cost
        stays ``O(D + D^2/k)``.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)

    def _spiral_radius(self, probe_radius: int) -> int:
        return max(1, math.ceil(2.0 * probe_radius / math.sqrt(self.k)))

    def agent_hitting_times(
        self,
        target: IntPoint,
        horizon: int,
        n_agents: int,
        rng: SeedLike = None,
    ) -> HittingTimeSample:
        """Censored hitting times of ``n_agents`` independent agents.

        All agents follow the same doubling schedule (they are identical
        and cannot communicate); randomness enters through each probe's
        uniform center.  Probes run in lockstep across agents, vectorized.
        """
        rng = as_generator(rng)
        tx, ty = int(target[0]), int(target[1])
        times = np.full(n_agents, CENSORED, dtype=np.int64)
        if (tx, ty) == (0, 0):
            return HittingTimeSample(times=np.zeros(n_agents, np.int64), horizon=horizon)
        elapsed = np.zeros(n_agents, dtype=np.int64)
        active = np.arange(n_agents)
        for probe_radius in _doubling_schedule():
            if not active.size:
                break
            s = self._spiral_radius(probe_radius)
            radii = _sample_ball_radii(probe_radius, active.size, rng)
            centers = sample_ring_offsets(radii.astype(np.int64), rng)
            walk_out = np.abs(centers[:, 0]) + np.abs(centers[:, 1])
            # Hit check: the spiral over Q_s(center) visits the target at
            # the (closed-form) spiral index of the relative offset.
            rel_x = tx - centers[:, 0]
            rel_y = ty - centers[:, 1]
            covered = (np.abs(rel_x) <= s) & (np.abs(rel_y) <= s)
            spiral_steps = np.zeros(active.size, dtype=np.int64)
            for i in np.flatnonzero(covered):
                spiral_steps[i] = spiral_index((int(rel_x[i]), int(rel_y[i])))
            hit_step = elapsed[active] + walk_out + spiral_steps
            success = covered & (hit_step <= horizon)
            times[active[success]] = hit_step[success]
            probe_cost = 2 * walk_out + steps_to_cover_box(s)
            elapsed[active] += probe_cost
            survivors = ~success & (elapsed[active] < horizon)
            active = active[survivors]
        return HittingTimeSample(times=times, horizon=horizon)

    def sample_parallel_hitting_times(
        self,
        target: IntPoint,
        n_runs: int,
        horizon: Optional[int] = None,
        rng: SeedLike = None,
    ) -> HittingTimeSample:
        """Parallel (min over ``k`` agents) hitting times for ``n_runs`` runs."""
        rng = as_generator(rng)
        if horizon is None:
            l = abs(int(target[0])) + abs(int(target[1]))
            horizon = 4 * (l * l + l)
        sample = self.agent_hitting_times(
            target, horizon, n_agents=n_runs * self.k, rng=rng
        )
        return HittingTimeSample(
            times=group_minimum(sample.times, self.k), horizon=horizon
        )
