"""Tests for the composite correlated random walk (CCRW)."""

import numpy as np
import pytest

from repro.engine.results import CENSORED
from repro.lattice.points import l1_distance, l1_norm
from repro.walks.composite import CompositeCorrelatedWalk, ccrw_hitting_times


def test_validation():
    with pytest.raises(ValueError):
        CompositeCorrelatedWalk(intensive_turn_probability=0.0)
    with pytest.raises(ValueError):
        CompositeCorrelatedWalk(extensive_bout_mean=0.5)
    with pytest.raises(ValueError):
        CompositeCorrelatedWalk(switch_to_extensive=0.0)
    with pytest.raises(ValueError):
        CompositeCorrelatedWalk(switch_to_extensive=1.0)


def test_unit_speed(rng):
    walk = CompositeCorrelatedWalk(rng=rng)
    previous = walk.position
    for _ in range(300):
        current = walk.advance()
        assert l1_distance(previous, current) == 1
        previous = current
    assert walk.time == 300


def test_modes_alternate(rng):
    walk = CompositeCorrelatedWalk(
        switch_to_extensive=0.2, extensive_bout_mean=10.0, rng=rng
    )
    modes = set()
    for _ in range(500):
        walk.advance()
        modes.add(walk.mode)
    assert modes == {"intensive", "extensive"}


def test_reset(rng):
    walk = CompositeCorrelatedWalk(start=(5, -2), rng=rng)
    walk.run(40)
    walk.reset()
    assert walk.position == (5, -2)
    assert walk.time == 0
    assert walk.mode == "intensive"


def test_longer_bouts_travel_farther(rng):
    """More persistence => larger typical displacement at fixed time."""

    def median_displacement(bout_mean):
        distances = []
        for _ in range(200):
            walk = CompositeCorrelatedWalk(
                extensive_bout_mean=bout_mean, switch_to_extensive=0.1, rng=rng
            )
            walk.run(400)
            distances.append(l1_norm(walk.position))
        return float(np.median(distances))

    assert median_displacement(64.0) > 1.5 * median_displacement(2.0)


# ----------------------------------------------------------- vectorized


def test_vectorized_validation(rng):
    with pytest.raises(ValueError):
        ccrw_hitting_times((3, 0), -1, 10, rng)
    with pytest.raises(ValueError):
        ccrw_hitting_times((3, 0), 10, 0, rng)


def test_vectorized_target_at_origin(rng):
    times = ccrw_hitting_times((0, 0), 10, 5, rng)
    np.testing.assert_array_equal(times, np.zeros(5))


def test_vectorized_hit_times_valid(rng):
    times = ccrw_hitting_times((4, 2), 200, 3_000, rng)
    hits = times[times != CENSORED]
    assert hits.size > 0
    assert hits.min() >= 6  # L1 distance, unit steps
    assert hits.max() <= 200


def test_vectorized_matches_object_level(rng):
    """Statistical agreement between the vectorized and object CCRWs."""
    target, horizon = (3, 1), 80
    times = ccrw_hitting_times(
        target, horizon, 20_000, rng,
        intensive_turn_probability=0.5,
        extensive_bout_mean=8.0,
        switch_to_extensive=0.05,
    )
    p_vec = float((times != CENSORED).mean())
    hits = 0
    n_ref = 2_000
    for _ in range(n_ref):
        walk = CompositeCorrelatedWalk(
            intensive_turn_probability=0.5,
            extensive_bout_mean=8.0,
            switch_to_extensive=0.05,
            rng=rng,
        )
        if walk.hitting_time(target, horizon) is not None:
            hits += 1
    p_ref = hits / n_ref
    se = (p_ref * (1 - p_ref) / n_ref + p_vec * (1 - p_vec) / 20_000) ** 0.5
    assert abs(p_vec - p_ref) < 4.5 * se + 1e-3
