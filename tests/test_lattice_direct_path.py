"""Tests for direct paths (Definition 3.1) -- the model's trickiest piece.

These tests verify the structural claims stated in the module docstring of
repro.lattice.direct_path, on which the O(1) hit detection of the fast
engine rests:

* candidate nodes are on the right ring, adjacent combinations always form
  valid shortest paths, ties never occur at consecutive rings;
* the O(1) marginal sampler agrees exactly with brute-force enumeration of
  all direct paths;
* Lemma 3.2's bounds hold for the exact ring marginal.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.direct_path import (
    direct_path_node_candidates,
    enumerate_direct_paths,
    ring_marginal_exact,
    sample_direct_path,
    sample_direct_path_nodes,
)
from repro.lattice.points import l1_distance, l2_distance
from repro.lattice.rings import iter_ring_offsets

coords = st.integers(min_value=-40, max_value=40)
nodes = st.tuples(coords, coords)


# ----------------------------------------------------------- candidates


def test_candidates_endpoints():
    assert direct_path_node_candidates((0, 0), (3, 2), 0) == [(0, 0)]
    assert direct_path_node_candidates((0, 0), (3, 2), 5) == [(3, 2)]


def test_candidates_axis_aligned_no_ties():
    for i in range(1, 7):
        assert direct_path_node_candidates((0, 0), (7, 0), i) == [(i, 0)]
        assert direct_path_node_candidates((0, 0), (0, -7), i) == [(0, -i)]


def test_candidates_tie_on_diagonal():
    # Segment to (1, 1): at ring 1 the point w_1 = (0.5, 0.5) is equidistant
    # from (1, 0) and (0, 1).
    candidates = direct_path_node_candidates((0, 0), (1, 1), 1)
    assert sorted(candidates) == [(0, 1), (1, 0)]


def test_candidates_out_of_range():
    with pytest.raises(ValueError):
        direct_path_node_candidates((0, 0), (2, 1), 4)
    with pytest.raises(ValueError):
        direct_path_node_candidates((0, 0), (2, 1), -1)


@given(nodes, nodes)
def test_candidates_ring_and_optimality(u, v):
    """Candidates lie on ring i and are the Euclidean-closest ring nodes."""
    d = l1_distance(u, v)
    if d == 0:
        return
    dx, dy = v[0] - u[0], v[1] - u[1]
    for i in (1, d // 2, d - 1):
        if not 1 <= i <= d - 1:
            continue
        candidates = direct_path_node_candidates(u, v, i)
        w = (u[0] + i * dx / d, u[1] + i * dy / d)
        best = min(
            l2_distance((u[0] + ox, u[1] + oy), w) for ox, oy in iter_ring_offsets(i)
        )
        for c in candidates:
            assert l1_distance(u, c) == i
            assert l2_distance(c, w) == pytest.approx(best, abs=1e-9)
        # Tie-ness: exactly the argmin set, up to float equality.
        argmin = [
            (u[0] + ox, u[1] + oy)
            for ox, oy in iter_ring_offsets(i)
            if l2_distance((u[0] + ox, u[1] + oy), w) < best + 1e-9
        ]
        assert sorted(argmin) == sorted(candidates)


@given(nodes, nodes)
def test_no_consecutive_ties(u, v):
    d = l1_distance(u, v)
    tie_rings = [
        i
        for i in range(1, d)
        if len(direct_path_node_candidates(u, v, i)) == 2
    ]
    for a, b in zip(tie_rings, tie_rings[1:]):
        assert b - a >= 2


# ------------------------------------------------------------- full paths


@given(nodes, nodes)
@settings(max_examples=60)
def test_sampled_path_is_shortest_and_adjacent(u, v):
    rng = np.random.default_rng(0)
    path = sample_direct_path(u, v, rng)
    d = l1_distance(u, v)
    assert len(path) == d + 1
    assert path[0] == u and path[-1] == v
    for i, node in enumerate(path):
        assert l1_distance(u, node) == i
    for a, b in zip(path, path[1:]):
        assert l1_distance(a, b) == 1


def test_enumeration_counts_ties():
    # (5, 5): ties at odd rings 1, 3, 5, 7, 9 minus endpoints -> rings
    # 1,3,5,7,9 have w_i with fractional x = i/2; i odd -> tie.  Ring 5 is
    # (2.5, 2.5) -> tie; endpoints excluded are 0 and 10.
    paths = enumerate_direct_paths((0, 0), (5, 5))
    assert len(paths) == 2 ** 5
    for path in paths:
        for a, b in zip(path, path[1:]):
            assert l1_distance(a, b) == 1


def test_enumeration_no_ties_axis():
    assert len(enumerate_direct_paths((2, 3), (9, 3))) == 1


def test_enumeration_guard():
    with pytest.raises(ValueError):
        enumerate_direct_paths((0, 0), (50, 50), max_paths=1000)


@pytest.mark.parametrize("v", [(4, 3), (5, 2), (6, 6), (-3, 7), (8, -1), (-5, -5)])
def test_marginal_sampler_matches_enumeration(v, rng):
    """The O(1) ring sampler's law == uniform-over-paths marginal, exactly
    (statistically, with a generous chi-square gate)."""
    u = (0, 0)
    d = l1_distance(u, v)
    paths = enumerate_direct_paths(u, v)
    for i in (1, d // 2, d - 1):
        if not 1 <= i <= d - 1:
            continue
        truth = {}
        for path in paths:
            truth[path[i]] = truth.get(path[i], 0) + 1
        total = sum(truth.values())
        truth = {node: c / total for node, c in truth.items()}
        n = 4_000
        starts = np.zeros((n, 2), dtype=np.int64)
        ends = np.tile(np.array(v, dtype=np.int64), (n, 1))
        rings = np.full(n, i, dtype=np.int64)
        samples = sample_direct_path_nodes(starts, ends, rings, rng)
        counts = {}
        for x, y in map(tuple, samples):
            counts[(x, y)] = counts.get((x, y), 0) + 1
        assert set(counts) <= set(truth), "sampler produced an impossible node"
        chi2 = sum(
            (counts.get(node, 0) - p * n) ** 2 / (p * n) for node, p in truth.items()
        )
        assert chi2 < 30.0  # <= 2 cells, overwhelmingly generous


def test_vectorized_sampler_edge_rings(rng):
    starts = np.array([[0, 0], [1, 1], [2, -3]], dtype=np.int64)
    ends = np.array([[0, 0], [4, 5], [2, -3]], dtype=np.int64)
    rings = np.array([0, 7, 0], dtype=np.int64)
    out = sample_direct_path_nodes(starts, ends, rings, rng)
    np.testing.assert_array_equal(out[0], [0, 0])
    np.testing.assert_array_equal(out[1], [4, 5])
    np.testing.assert_array_equal(out[2], [2, -3])


def test_vectorized_sampler_rejects_bad_ring(rng):
    with pytest.raises(ValueError):
        sample_direct_path_nodes(
            np.zeros((1, 2), np.int64),
            np.array([[2, 1]], np.int64),
            np.array([5], np.int64),
            rng,
        )


@given(nodes, nodes, st.integers(0, 80))
@settings(max_examples=60)
def test_vectorized_sampler_on_ring(u, v, i_raw):
    d = l1_distance(u, v)
    i = i_raw % (d + 1)
    rng = np.random.default_rng(42)
    out = sample_direct_path_nodes(
        np.array([u], dtype=np.int64),
        np.array([v], dtype=np.int64),
        np.array([i], dtype=np.int64),
        rng,
    )
    node = (int(out[0, 0]), int(out[0, 1]))
    assert l1_distance(u, node) == i
    assert node in direct_path_node_candidates(u, v, i)


# ------------------------------------------------------------- Lemma 3.2


@pytest.mark.parametrize("d,i", [(6, 2), (9, 4), (16, 5), (20, 13), (32, 31)])
def test_lemma_3_2_bounds(d, i):
    marginal = ring_marginal_exact(d, i)
    lower = (i / d) * (d // i) / (4 * i)
    upper = (i / d) * (-(-d // i)) / (4 * i)
    assert len(marginal) == 4 * i  # full ring support
    assert sum(marginal.values()) == pytest.approx(1.0)
    assert min(marginal.values()) >= lower - 1e-12
    assert max(marginal.values()) <= upper + 1e-12


def test_ring_marginal_validates_input():
    with pytest.raises(ValueError):
        ring_marginal_exact(5, 0)
    with pytest.raises(ValueError):
        ring_marginal_exact(5, 6)
