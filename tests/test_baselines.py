"""Tests for the baseline search strategies."""

import math

import numpy as np
import pytest

from repro.baselines.ballistic_search import BallisticSpraySearch, ray_ring_nodes
from repro.baselines.spiral_search import SpiralSearch, _doubling_schedule, _sample_ball_radii
from repro.baselines.srw_search import SRWSearch
from repro.lattice.points import l1_norm


# ----------------------------------------------------------------- spiral


def test_doubling_schedule_prefix():
    schedule = _doubling_schedule()
    prefix = [next(schedule) for _ in range(6)]
    assert prefix == [2, 2, 4, 2, 4, 8]


def test_sample_ball_radii_distribution(rng):
    d = 4
    radii = _sample_ball_radii(d, 40_000, rng)
    assert radii.min() >= 0 and radii.max() <= d
    # P(r = 0) = 1/|B_4| = 1/41; P(r = 4) = 16/41.
    assert abs(float((radii == 0).mean()) - 1 / 41) < 0.005
    assert abs(float((radii == 4).mean()) - 16 / 41) < 0.01


def test_spiral_search_finds_close_targets_quickly(rng):
    spiral = SpiralSearch(k=4)
    sample = spiral.sample_parallel_hitting_times(
        (3, 1), n_runs=50, horizon=2_000, rng=rng
    )
    # Probes are randomized, so single probes can miss, but with a budget
    # of many probe rounds the target at distance 4 is all but certain.
    assert sample.hit_fraction >= 0.95
    assert sample.hit_times().min() >= 4


def test_spiral_search_scales_with_k(rng):
    target = (30, 18)
    horizon = 4 * 48 * 48
    few = SpiralSearch(k=2).sample_parallel_hitting_times(
        target, n_runs=40, horizon=horizon, rng=rng
    )
    many = SpiralSearch(k=64).sample_parallel_hitting_times(
        target, n_runs=40, horizon=horizon, rng=rng
    )
    assert many.hit_fraction >= few.hit_fraction - 0.05
    if few.n_hits > 10 and many.n_hits > 10:
        assert np.median(many.hit_times()) <= np.median(few.hit_times())


def test_spiral_search_target_at_origin(rng):
    sample = SpiralSearch(k=3).agent_hitting_times((0, 0), 100, 5, rng)
    np.testing.assert_array_equal(sample.times, np.zeros(5))


def test_spiral_k_validation():
    with pytest.raises(ValueError):
        SpiralSearch(0)


def test_spiral_hitting_time_at_least_distance(rng):
    target = (9, 7)
    sample = SpiralSearch(k=8).agent_hitting_times(target, 10_000, 200, rng)
    assert sample.hit_times().min() >= 0  # probe walk + spiral can be fast,
    # but never faster than the distance:
    assert sample.hit_times().min() >= l1_norm(target) - 0  # exact walk+spiral lower bound
    # NOTE: the agent walks to a center then spirals; reaching a node at
    # distance 16 necessarily takes >= 16 steps.
    assert sample.hit_times().min() >= 16


# -------------------------------------------------------------------- SRW


def test_srw_search_near_target(rng):
    srw = SRWSearch(k=16)
    sample = srw.sample_parallel_hitting_times((2, 1), n_runs=40, rng=rng)
    assert sample.hit_fraction > 0.9
    assert sample.hit_times().min() >= 3


def test_srw_search_agent_level(rng):
    srw = SRWSearch(k=1)
    sample = srw.agent_hitting_times((1, 0), horizon=30, n_agents=3_000, rng=rng)
    assert 0.4 < sample.hit_fraction < 0.95


def test_srw_k_validation():
    with pytest.raises(ValueError):
        SRWSearch(-1)


# -------------------------------------------------------------- ballistic


def test_ray_ring_nodes_on_ring():
    angles = np.linspace(0, 2 * math.pi, 100, endpoint=False)
    nodes = ray_ring_nodes(angles, 13)
    l1 = np.abs(nodes[:, 0]) + np.abs(nodes[:, 1])
    np.testing.assert_array_equal(l1, np.full(100, 13))


def test_ray_ring_nodes_axis_angles():
    nodes = ray_ring_nodes(np.array([0.0, math.pi / 2, math.pi]), 5)
    np.testing.assert_array_equal(nodes[0], [5, 0])
    np.testing.assert_array_equal(nodes[1], [0, 5])
    np.testing.assert_array_equal(nodes[2], [-5, 0])


def test_ballistic_hit_probability_theta_one_over_l(rng):
    l = 40
    spray = BallisticSpraySearch(k=1)
    sample = spray.agent_hitting_times((l, 0), horizon=4 * l, n_agents=100_000, rng=rng)
    # Rough 1/(4l) per ray with an O(1) angular factor.
    assert 0.1 / l < sample.hit_fraction < 4.0 / l
    hits = sample.hit_times()
    assert np.all(hits == l)


def test_ballistic_horizon_shorter_than_distance(rng):
    spray = BallisticSpraySearch(k=4)
    sample = spray.agent_hitting_times((10, 0), horizon=5, n_agents=100, rng=rng)
    assert sample.n_hits == 0


def test_ballistic_parallel_grouping(rng):
    spray = BallisticSpraySearch(k=200)
    sample = spray.sample_parallel_hitting_times((8, 4), n_runs=50, rng=rng)
    # 200 rays vs distance 12: success probability ~ 1 - (1-1/48)^200 ~ 0.98.
    assert sample.hit_fraction > 0.8
    assert np.all(sample.hit_times() == 12)


def test_ballistic_k_validation():
    with pytest.raises(ValueError):
        BallisticSpraySearch(0)


def test_spiral_parallel_beats_single_agent(rng):
    """k agents' parallel spiral time is stochastically below one agent's."""
    target = (20, 12)
    horizon = 3 * 32 * 32
    solo = SpiralSearch(k=1).sample_parallel_hitting_times(
        target, n_runs=60, horizon=horizon, rng=rng
    )
    team = SpiralSearch(k=16).sample_parallel_hitting_times(
        target, n_runs=60, horizon=horizon, rng=rng
    )
    assert team.hit_fraction >= solo.hit_fraction - 0.05
    if solo.n_hits > 20 and team.n_hits > 20:
        assert np.median(team.hit_times()) < np.median(solo.hit_times())


def test_ballistic_spray_direction_coverage(rng):
    """Across many rays the crossing nodes cover the whole ring."""
    l = 10
    nodes = ray_ring_nodes(rng.uniform(0, 2 * math.pi, 20_000), l)
    distinct = {(int(x), int(y)) for x, y in nodes}
    assert len(distinct) == 4 * l
