"""Consistency between the theory formulas and the simulator.

These tests do not re-prove the theorems (the experiment harnesses do the
quantitative work); they check that the *executable predictions* in
repro.theory order and scale the same way the simulator does on small
instances -- guarding against sign errors or swapped exponents in either
half of the library.
"""

import numpy as np
import pytest

from repro.core.exponents import mu_factor
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.vectorized import walk_hitting_times
from repro.experiments.common import default_target
from repro.theory.calibration import calibrate_power_law
from repro.theory.predictions import (
    predicted_hit_probability_slope,
    thm_1_1a_probability,
    thm_1_1b_probability,
)


def _hit_probability(alpha, l, horizon_factor, n, rng):
    horizon = max(l, int(horizon_factor * mu_factor(alpha, l) * l ** (alpha - 1.0)))
    return walk_hitting_times(
        ZetaJumpDistribution(alpha), default_target(l), horizon=horizon, n=n, rng=rng
    ).hit_fraction


def test_polynomial_part_ordering_matches_simulation(rng):
    """Within the characteristic time, the polynomial part l^-(3-alpha)
    says larger alpha in (2,3) -> higher hit probability at fixed l; the
    simulator agrees.  (The full Theorem 4.1(a) expression is deliberately
    NOT monotone near alpha -> 3: its (3-alpha)^2 factor collapses, which
    is why Theorem 1.2 takes over there.)"""
    l = 32
    polynomial = [l ** -(3.0 - a) for a in (2.2, 2.5, 2.8)]
    assert polynomial == sorted(polynomial)
    measured = [_hit_probability(a, l, 4.0, 6_000, rng) for a in (2.2, 2.5, 2.8)]
    assert measured[0] < measured[-1]
    # The refined formula still produces probabilities in (0, 1].
    assert all(0 < thm_1_1a_probability(a, l) <= 1 for a in (2.2, 2.5, 2.8))


def test_theory_ordering_in_l_matches_simulation(rng):
    """Hit probability decreases with distance, in both worlds."""
    alpha = 2.5
    theory = [thm_1_1a_probability(alpha, l) for l in (16, 32, 64)]
    assert theory == sorted(theory, reverse=True)
    measured = [_hit_probability(alpha, l, 4.0, 6_000, rng) for l in (16, 64)]
    assert measured[0] > measured[-1]


def test_early_time_bound_is_actually_an_upper_bound(rng):
    """Thm 1.1(b)'s t^2/l^(alpha+1) shape upper-bounds early hits (up to
    its hidden constant; we allow a generous one)."""
    alpha, l = 2.5, 32
    horizon = 4 * l
    measured = walk_hitting_times(
        ZetaJumpDistribution(alpha), default_target(l), horizon=horizon, n=40_000, rng=rng
    ).hit_fraction
    bound = thm_1_1b_probability(alpha, l, horizon)
    assert measured <= 10.0 * bound


def test_predicted_slope_matches_calibrated_fit(rng):
    """Pinning the theorem's exponent should leave small log-residuals."""
    alpha = 2.5
    points = []
    for l in (12, 18, 27, 40):
        points.append((float(l), _hit_probability(alpha, l, 4.0, 8_000, rng)))
    xs, ys = zip(*points)
    calibrated = calibrate_power_law(xs, ys, predicted_hit_probability_slope(alpha))
    # Residual spread under the pinned exponent stays under a factor ~1.5.
    assert calibrated.log_residual_std < 0.45
    # And the calibrated law explains a held-out point.
    held_out = _hit_probability(alpha, 24, 4.0, 8_000, rng)
    assert calibrated.explains(24.0, held_out)


# --------------------------------------------------------- calibration unit


def test_calibrate_power_law_exact():
    xs = [1.0, 2.0, 4.0]
    ys = [5.0 * x**-1.5 for x in xs]
    fit = calibrate_power_law(xs, ys, -1.5)
    assert fit.prefactor == pytest.approx(5.0)
    assert fit.log_residual_std == pytest.approx(0.0, abs=1e-12)
    assert fit.predict(8.0) == pytest.approx(5.0 * 8.0**-1.5)
    low, high = fit.prediction_interval(8.0)
    assert low == pytest.approx(high)


def test_calibrate_power_law_noise(rng):
    xs = np.geomspace(1, 100, 20)
    ys = 3.0 * xs**0.5 * np.exp(rng.normal(0, 0.1, xs.size))
    fit = calibrate_power_law(xs, ys, 0.5)
    assert fit.prefactor == pytest.approx(3.0, rel=0.15)
    assert 0.03 < fit.log_residual_std < 0.3
    assert fit.explains(50.0, 3.0 * 50.0**0.5)


def test_calibrate_power_law_validation():
    with pytest.raises(ValueError):
        calibrate_power_law([], [], -1.0)
    with pytest.raises(ValueError):
        calibrate_power_law([1.0, -1.0], [1.0, 1.0], -1.0)
    with pytest.raises(ValueError):
        calibrate_power_law([1.0], [1.0, 2.0], -1.0)
