"""Tests for benchmark snapshot diffing (``repro-experiment bench-history``)."""

import json

import pytest

from repro.cli import main
from repro.telemetry.bench_history import (
    compare_snapshots,
    parse_threshold,
    pool_speedup_record,
    render_comparison,
)


def test_pool_speedup_record_emits_verdict_on_capable_host():
    record = pool_speedup_record(
        8.0, 2.0, workers_requested=4, workers=4, host_cpus=8
    )
    assert record["pool_speedup"] == pytest.approx(4.0)
    assert record["clamped"] is None  # tombstone scrubs a stale flag


def test_pool_speedup_record_refuses_verdict_on_clamped_host():
    record = pool_speedup_record(
        8.0, 8.5, workers_requested=4, workers=1, host_cpus=1
    )
    assert record["clamped"] is True
    assert record["pool_speedup"] is None  # tombstone, not a value
    # Unknown CPU count is treated as clamped too: no verdict is honest.
    assert pool_speedup_record(
        8.0, 2.0, workers_requested=4, workers=4, host_cpus=None
    )["clamped"] is True


def test_record_bench_none_values_delete_snapshot_keys(tmp_path, monkeypatch):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_utils", "benchmarks/bench_utils.py"
    )
    bench_utils = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench_utils)
    monkeypatch.setattr(bench_utils, "_ROOT", tmp_path)
    bench_utils.record_bench("t", {"pool_speedup": 3.1, "serial_seconds": 2.0})
    bench_utils.record_bench("t", {"pool_speedup": None, "clamped": True})
    snapshot = json.loads((tmp_path / "BENCH_t.json").read_text())
    assert "pool_speedup" not in snapshot
    assert snapshot["clamped"] is True
    assert snapshot["serial_seconds"] == 2.0


def test_parse_threshold_accepts_percent_and_fraction():
    assert parse_threshold("25%") == pytest.approx(0.25)
    assert parse_threshold("0.25") == pytest.approx(0.25)
    assert parse_threshold(" 10% ") == pytest.approx(0.10)
    for bad in ("0", "-5%", "0%", "nonsense"):
        with pytest.raises(ValueError):
            parse_threshold(bad)


def test_seconds_compared_relatively():
    deltas = compare_snapshots(
        {"run_seconds": 1.0}, {"run_seconds": 1.3}, threshold=0.25
    )
    (delta,) = deltas
    assert delta.kind == "seconds"
    assert delta.delta == pytest.approx(0.3)
    assert delta.regressed
    # Below the threshold: ok.
    (ok,) = compare_snapshots({"run_seconds": 1.0}, {"run_seconds": 1.2}, 0.25)
    assert not ok.regressed
    # Speedups are never regressions.
    (fast,) = compare_snapshots({"run_seconds": 1.0}, {"run_seconds": 0.5}, 0.25)
    assert not fast.regressed


def test_overhead_compared_absolutely():
    # 0.10 -> 0.30 is a 3x relative change but only +0.20 absolute: within
    # a 0.25 threshold for *_overhead metrics.
    (delta,) = compare_snapshots(
        {"telemetry_overhead": 0.10}, {"telemetry_overhead": 0.30}, threshold=0.25
    )
    assert delta.kind == "overhead" and not delta.regressed
    (bad,) = compare_snapshots(
        {"telemetry_overhead": 0.10}, {"telemetry_overhead": 0.40}, threshold=0.25
    )
    assert bad.regressed


def test_config_drift_warns_but_never_regresses():
    deltas = compare_snapshots(
        {"n_walks": 40000, "run_seconds": 1.0},
        {"n_walks": 80000, "run_seconds": 1.1},
        threshold=0.25,
    )
    by_name = {d.name: d for d in deltas}
    assert by_name["n_walks"].kind == "config"
    assert not by_name["n_walks"].regressed
    assert "drift" in by_name["n_walks"].note
    text, regressed = render_comparison(deltas, 0.25)
    assert regressed == []
    assert "configuration drifted" in text


def test_missing_metrics_reported_not_regressed():
    deltas = compare_snapshots(
        {"old_seconds": 1.0}, {"new_seconds": 2.0}, threshold=0.25
    )
    notes = {d.name: d.note for d in deltas}
    assert notes["old_seconds"] == "only in baseline"
    assert notes["new_seconds"] == "only in current"
    assert not any(d.regressed for d in deltas)


def test_render_comparison_verdicts_and_warn_only():
    deltas = compare_snapshots(
        {"a_seconds": 1.0, "b_seconds": 1.0},
        {"a_seconds": 2.0, "b_seconds": 1.0},
        threshold=0.25,
    )
    text, regressed = render_comparison(deltas, 0.25)
    assert regressed == ["a_seconds"]
    assert "REGRESSED" in text and "FAIL" in text
    warn_text, warn_regressed = render_comparison(deltas, 0.25, warn_only=True)
    assert warn_regressed == ["a_seconds"]
    assert "WARN" in warn_text and "FAIL" not in warn_text


# ------------------------------------------------------------ worker context


def test_speedup_annotated_with_effective_and_requested_workers():
    deltas = compare_snapshots(
        {"pool_speedup": 3.1, "workers": 4, "workers_requested": 4},
        {"pool_speedup": 3.0, "workers": 4, "workers_requested": 4},
        threshold=0.25,
    )
    by_name = {d.name: d for d in deltas}
    assert "[workers: 4 -> 4]" in by_name["pool_speedup"].note
    assert by_name["pool_speedup"].comparable
    assert not by_name["pool_speedup"].regressed


def test_speedup_across_different_effective_workers_is_drift_not_regression():
    """A 4-worker baseline vs a clamped 1-worker current: the huge speedup
    drop is a workload change, not a pool regression -- and vice versa, a
    flat ~1.0 speedup on the clamped host must not read as a pass."""
    deltas = compare_snapshots(
        {"pool_speedup": 3.2, "workers": 4, "workers_requested": 4},
        {"pool_speedup": 1.05, "workers": 1, "workers_requested": 4},
        threshold=0.25,
    )
    by_name = {d.name: d for d in deltas}
    speedup = by_name["pool_speedup"]
    assert not speedup.comparable
    assert not speedup.regressed  # never a regression verdict either way
    assert "1 (of 4 requested)" in speedup.note
    text, regressed = render_comparison(deltas, 0.25)
    assert regressed == []
    assert "DRIFT" in text
    assert "clamped host" in text
    assert "does NOT clear the pool" in text


def test_clamped_host_speedup_warns_even_when_values_match():
    """BENCH_sweep.json's real shape: workers 1 of 4 requested on both
    sides.  The comparison itself is fine, but the render must say the
    speedup came from a clamped host."""
    snapshot = {"pool_speedup": 1.13, "workers": 1, "workers_requested": 4}
    deltas = compare_snapshots(snapshot, dict(snapshot), threshold=0.25)
    by_name = {d.name: d for d in deltas}
    assert by_name["pool_speedup"].comparable
    text, regressed = render_comparison(deltas, 0.25)
    assert regressed == []
    assert "clamped host" in text
    assert "1 (of 4 requested)" in by_name["pool_speedup"].note


def test_genuine_speedup_regression_still_fails_at_full_workers():
    deltas = compare_snapshots(
        {"pool_speedup": 3.2, "workers": 4, "workers_requested": 4},
        {"pool_speedup": 2.0, "workers": 4, "workers_requested": 4},
        threshold=0.25,
    )
    by_name = {d.name: d for d in deltas}
    assert by_name["pool_speedup"].regressed
    text, regressed = render_comparison(deltas, 0.25)
    assert regressed == ["pool_speedup"]
    assert "clamped host" not in text


def test_speedup_without_worker_keys_keeps_old_behavior():
    (delta,) = compare_snapshots(
        {"pool_speedup": 3.0}, {"pool_speedup": 2.0}, threshold=0.25
    )
    assert delta.regressed and delta.comparable
    assert "[workers" not in delta.note


# ----------------------------------------------------------------------- CLI


def write_snapshot(path, metrics):
    path.write_text(json.dumps(metrics))
    return path


def test_cli_bench_history_ok(tmp_path, capsys):
    base = write_snapshot(tmp_path / "base.json", {"x_seconds": 1.0})
    cur = write_snapshot(tmp_path / "cur.json", {"x_seconds": 1.1})
    assert main(["bench-history", str(base), str(cur)]) == 0
    out = capsys.readouterr().out
    assert "no regressions" in out


def test_cli_bench_history_fails_on_regression(tmp_path, capsys):
    base = write_snapshot(tmp_path / "base.json", {"x_seconds": 1.0})
    cur = write_snapshot(tmp_path / "cur.json", {"x_seconds": 2.0})
    assert main(["bench-history", str(base), str(cur)]) == 1
    assert "FAIL" in capsys.readouterr().out
    # --warn-only reports but exits 0 (CI's engine-timing mode).
    assert main(["bench-history", str(base), str(cur), "--warn-only"]) == 0


def test_cli_bench_history_threshold_flag(tmp_path):
    base = write_snapshot(tmp_path / "base.json", {"x_seconds": 1.0})
    cur = write_snapshot(tmp_path / "cur.json", {"x_seconds": 1.4})
    assert main(["bench-history", str(base), str(cur), "--max-regression", "50%"]) == 0
    assert main(["bench-history", str(base), str(cur), "--max-regression", "0.3"]) == 1


def test_cli_bench_history_degrades_gracefully_on_bad_snapshots(tmp_path, capsys):
    """Missing/garbled snapshots warn and exit 0 unless ``--strict``.

    A benchmark that never ran (fresh clone, skipped job) should not fail
    an unrelated CI leg; only ``--strict`` turns snapshot problems into a
    usage error.
    """
    base = write_snapshot(tmp_path / "base.json", {"x_seconds": 1.0})
    missing = tmp_path / "nope.json"
    assert main(["bench-history", str(base), str(missing)]) == 0
    assert "warning" in capsys.readouterr().err
    bad = write_snapshot(tmp_path / "bad.json", [1, 2, 3])
    assert main(["bench-history", str(base), str(bad)]) == 0
    assert "warning" in capsys.readouterr().err
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    assert main(["bench-history", str(base), str(garbled)]) == 0
    assert "warning" in capsys.readouterr().err
    # --strict restores the old hard-fail contract for all three cases.
    for snapshot in (missing, bad, garbled):
        assert main(["bench-history", str(base), str(snapshot), "--strict"]) == 2
        assert "error" in capsys.readouterr().err


def test_cli_bench_history_bad_threshold_is_a_usage_error(tmp_path, capsys):
    base = write_snapshot(tmp_path / "base.json", {"x_seconds": 1.0})
    assert (
        main(["bench-history", str(base), str(base), "--max-regression", "bogus"])
        == 2
    )
    assert "error" in capsys.readouterr().err


def test_cli_fused_keys_hard_fail_even_with_warn_only(tmp_path, capsys):
    base = write_snapshot(
        tmp_path / "base.json",
        {"walk_fused_mean_seconds": 1.0, "walk_mean_seconds": 1.0},
    )
    cur = write_snapshot(
        tmp_path / "cur.json",
        {"walk_fused_mean_seconds": 2.0, "walk_mean_seconds": 2.0},
    )
    # Both keys regressed, but only the fused one gates --warn-only.
    assert main(["bench-history", str(base), str(cur), "--warn-only"]) == 1
    out = capsys.readouterr().out
    assert "gated" in out and "walk_fused_mean_seconds" in out
    # Without the fused key the same regression stays a warning.
    base2 = write_snapshot(tmp_path / "base2.json", {"walk_mean_seconds": 1.0})
    cur2 = write_snapshot(tmp_path / "cur2.json", {"walk_mean_seconds": 2.0})
    assert main(["bench-history", str(base2), str(cur2), "--warn-only"]) == 0


def test_cli_fused_speedup_warning_when_below_ratio(tmp_path, capsys):
    snapshot = {
        "ball_fused_mean_seconds": 1.0,
        "ball_legacy_mean_seconds": 1.1,  # only 1.1x faster: warn
    }
    base = write_snapshot(tmp_path / "base.json", snapshot)
    cur = write_snapshot(tmp_path / "cur.json", snapshot)
    assert main(["bench-history", str(base), str(cur)]) == 0
    out = capsys.readouterr().out
    assert "only 1.10x faster" in out
    # A healthy pair emits no speedup warning.
    healthy = {
        "ball_fused_mean_seconds": 1.0,
        "ball_legacy_mean_seconds": 2.0,
    }
    base2 = write_snapshot(tmp_path / "base2.json", healthy)
    cur2 = write_snapshot(tmp_path / "cur2.json", healthy)
    assert main(["bench-history", str(base2), str(cur2)]) == 0
    assert "faster" not in capsys.readouterr().out


def test_cli_bench_history_real_snapshot_shape(tmp_path):
    """The committed BENCH_runner.json shape round-trips through the diff."""
    snapshot = {
        "chunked_seconds": 5.27,
        "checkpointed_seconds": 5.43,
        "single_shot_seconds": 4.48,
        "telemetry_seconds": 7.23,
        "chunking_overhead": 0.176,
        "checkpoint_overhead": 0.030,
        "telemetry_overhead": 0.332,
        "n_chunks": 4,
        "n_walks": 40000,
        "meta": {"python": "3.x"},  # non-numeric: ignored
    }
    base = write_snapshot(tmp_path / "base.json", snapshot)
    cur = write_snapshot(tmp_path / "cur.json", snapshot)
    assert main(["bench-history", str(base), str(cur)]) == 0
