"""Shared fixtures: deterministic RNG per test.

Seeds are derived from a stable digest of the test's node id (NOT Python's
built-in ``hash``, which is salted per process), so every run of the suite
sees identical random streams.
"""

import zlib

import numpy as np
import pytest


@pytest.fixture
def rng(request):
    """A generator seeded deterministically from the test's node id."""
    seed = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng(seed)


@pytest.fixture
def fixed_rng():
    """A generator with a fixed global seed (for regression-style tests)."""
    return np.random.default_rng(20210726)  # PODC 2021 conference date
