"""The estimation daemon (:mod:`repro.serve.daemon`) end to end.

Each test runs the real asyncio server over a unix socket in
``tmp_path`` on a background-thread event loop, with a private
:class:`NullRecorder` so the ``serve.*`` counters are per-test.
Covers the acceptance bars: a theory-tier answer streams back before
refinement with >= 1 progressive CI-tightening response; two concurrent
identical queries share exactly one engine call (proven by
``serve.engine_calls`` / ``serve.batch_coalesced``); a repeated query
after a daemon restart is served from the persistent cache without
simulation; the ``shutdown`` op (the SIGTERM path) stops the server
cleanly and removes the socket.
"""

import asyncio
import threading
import time

import pytest

from repro.api.query import EstimateRequest
from repro.serve import EstimationService, ResultCache, serve_forever
from repro.serve.client import ServeClient
from repro.telemetry.recorder import NullRecorder

#: Small refinement sizes so every test's simulation tier runs in
#: well under a second.
FAST = dict(round_walks=200, max_walks=4_000, chunks=4)


class _Daemon:
    """One real daemon on a background thread, torn down via shutdown op."""

    def __init__(self, tmp_path, **service_kwargs):
        self.socket = tmp_path / "serve.sock"
        cache = service_kwargs.pop("cache", None)
        if cache is None:
            cache = ResultCache(tmp_path / "cache")
        self.recorder = service_kwargs.pop("recorder", None) or NullRecorder()
        self.service = EstimationService(
            cache,
            service_kwargs.pop("registry", None),
            recorder=self.recorder,
            **{**FAST, **service_kwargs},
        )
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10
        while not self.socket.exists():
            if time.monotonic() > deadline:  # pragma: no cover
                raise RuntimeError("daemon never bound its socket")
            time.sleep(0.01)

    def _run(self):
        asyncio.run(serve_forever(self.socket, self.service))

    def counter(self, name):
        snap = self.recorder.metrics.snapshot().get(name)
        return snap["value"] if snap else 0

    def stop(self):
        if not self.thread.is_alive():
            return
        try:
            with ServeClient(self.socket, timeout=10) as client:
                client.shutdown()
        except (OSError, ConnectionError):
            pass
        self.thread.join(timeout=10)


@pytest.fixture
def daemon_factory(tmp_path):
    started = []

    def _make(**kwargs):
        daemon = _Daemon(tmp_path, **kwargs)
        started.append(daemon)
        return daemon

    yield _make
    for daemon in started:
        daemon.stop()


def test_theory_first_then_progressive_then_final(daemon_factory):
    daemon = daemon_factory(batch_window=0.0)
    with ServeClient(daemon.socket) as client:
        started = time.monotonic()
        responses = list(
            client.estimate(EstimateRequest(alpha=2.2, l=6, max_ci=0.06))
        )
        first_latency = time.monotonic() - started
    assert responses[0].tier == "theory"
    assert responses[0].approximate and not responses[0].final
    progressive = [r for r in responses[1:-1] if r.tier == "simulation"]
    assert len(progressive) >= 1  # the CI visibly tightened mid-stream
    final = responses[-1]
    assert final.tier == "simulation" and final.final and final.converged
    assert final.half_width <= 0.06
    # seq strictly orders the stream
    assert [r.seq for r in responses] == sorted(r.seq for r in responses)
    assert first_latency < 30  # the whole refinement, not just theory


def test_no_ci_request_is_answered_by_theory_alone(daemon_factory):
    daemon = daemon_factory()
    with ServeClient(daemon.socket) as client:
        responses = list(client.estimate(EstimateRequest(alpha=2.5, l=32)))
    assert [r.tier for r in responses] == ["theory"]
    assert responses[0].final
    assert daemon.counter("serve.engine_calls") == 0


def test_concurrent_duplicates_share_one_engine_call(daemon_factory):
    daemon = daemon_factory(batch_window=0.3)
    request = EstimateRequest(alpha=2.4, l=6, max_ci=0.06)
    results = {}

    def _query(name):
        with ServeClient(daemon.socket) as client:
            results[name] = client.query(request)

    threads = [
        threading.Thread(target=_query, args=(name,)) for name in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert results["a"].final and results["b"].final
    # the coalescing proof: one engine call answered both queries
    assert daemon.counter("serve.engine_calls") == 1
    assert daemon.counter("serve.batch_coalesced") >= 1
    assert daemon.counter("serve.requests") == 2
    assert (results["a"].p, results["a"].trials) == (
        results["b"].p,
        results["b"].trials,
    )


def test_restart_serves_from_persistent_cache_without_simulation(
    tmp_path, daemon_factory
):
    request = EstimateRequest(alpha=2.2, l=6, max_ci=0.06)
    first = daemon_factory(batch_window=0.0)
    with ServeClient(first.socket) as client:
        original = client.query(request)
    assert first.counter("serve.engine_calls") == 1
    first.stop()

    # a fresh daemon over the same cache directory: no engine call
    second = daemon_factory(cache=ResultCache(tmp_path / "cache"))
    with ServeClient(second.socket) as client:
        served = client.query(request)
    assert served.tier == "cache"
    assert (served.p, served.trials) == (original.p, original.trials)
    assert second.counter("serve.engine_calls") == 0
    assert second.counter("serve.cache_hits") == 1


def test_warm_start_answers_from_registry_history(tmp_path, daemon_factory):
    from repro.telemetry.registry import RunRegistry, build_run_record, new_run_id

    registry = RunRegistry(tmp_path / "registry")
    row = {
        "key": "alpha=2.2 l=24",
        "label": "alpha=2.2 l=24",
        "law": "alpha=2.2",
        "params": {"alpha": 2.2, "l": 24},
        "trials": 2000,
        "successes": 100,
        "p": 0.05,
        "low": 0.04,
        "high": 0.06,
        "half_width": 0.01,
        "horizon": 576,
        "status": "complete",
    }
    registry.register(
        build_run_record(
            run_id=new_run_id(), command="sweep", label="t", estimates=[row]
        )
    )
    daemon = daemon_factory(registry=registry)
    assert daemon.service.warm_start() == 1
    with ServeClient(daemon.socket) as client:
        served = client.query(EstimateRequest(alpha=2.2, l=24, max_ci=0.05))
    assert served.tier == "cache"
    assert served.trials == 2000
    assert daemon.counter("serve.engine_calls") == 0


def test_ping_stats_and_error_handling(daemon_factory):
    daemon = daemon_factory()
    with ServeClient(daemon.socket) as client:
        assert client.ping()
        client.query(EstimateRequest(alpha=2.5, l=16))
        stats = client.stats()
        assert stats["counters"]["serve.requests"] == 1
        assert stats["cache_entries"] == 0
    # malformed payloads: an error line each, and the connection survives
    with ServeClient(daemon.socket) as client:
        client._send({"op": "estimate", "l": 8})  # no alpha
        reply = client._read_line()
        assert reply["ok"] is False and "alpha" in reply["error"]
        client._send({"op": "no-such-op"})
        reply = client._read_line()
        assert reply["ok"] is False
        assert client.ping()  # the connection survived both errors


def test_shutdown_op_stops_the_daemon_and_removes_the_socket(daemon_factory):
    daemon = daemon_factory()
    with ServeClient(daemon.socket) as client:
        assert client.shutdown()
    daemon.thread.join(timeout=10)
    assert not daemon.thread.is_alive()
    assert not daemon.socket.exists()


def test_cli_query_against_a_live_daemon(daemon_factory, capsys):
    from repro.cli import EXIT_OK, main

    daemon = daemon_factory(batch_window=0.0)
    code = main(
        [
            "query",
            "--socket", str(daemon.socket),
            "--alpha", "2.2", "--l", "6", "--max-ci", "0.06",
        ]
    )
    out = capsys.readouterr().out
    assert code == EXIT_OK
    lines = [line for line in out.splitlines() if line.strip()]
    assert lines[0].startswith("[theory~")
    assert lines[-1].startswith("[simulation final]")
    assert len(lines) >= 3  # theory + >=1 progressive + final
