"""Recovery-matrix tests for the fault-tolerant chunked runner.

The acceptance bar (ISSUE 1): for a fixed seed, a run that is killed via
each :class:`FaultInjector` mode and resumed yields a sample identical to
an uninterrupted run, and a deadline-expired run returns a valid partial
sample flagged as degraded rather than raising.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.multi_target import multi_target_search
from repro.engine.vectorized import walk_hitting_times
from repro.io_utils import CorruptResultError
from repro.runner import (
    CheckpointExistsError,
    CheckpointMismatchError,
    ChunkFailedError,
    ChunkPlan,
    FaultInjected,
    FaultInjector,
    ForagingTask,
    HittingTimeTask,
    Runner,
    RunnerState,
    arm,
    trap_signals,
)

LAW = ZetaJumpDistribution(2.5)
TARGET = (5, 3)
HORIZON = 150
N_WALKS = 400
N_CHUNKS = 4
SEED = 42


def make_task() -> HittingTimeTask:
    return HittingTimeTask(jumps=LAW, target=TARGET, horizon=HORIZON)


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted chunked sample every recovery test must match."""
    return Runner(n_chunks=N_CHUNKS).run(make_task(), N_WALKS, SEED).payload


# ---------------------------------------------------------------- chunk plans


def test_chunk_plan_sizes_and_offsets():
    plan = ChunkPlan(n_total=10, n_chunks=3, seed=0)
    assert plan.sizes() == [4, 3, 3]
    assert plan.offsets() == [0, 4, 7]
    assert sum(plan.sizes()) == 10


def test_chunk_plan_child_seeds_are_deterministic():
    a = ChunkPlan(n_total=100, n_chunks=5, seed=9).child_seeds()
    b = ChunkPlan(n_total=100, n_chunks=5, seed=9).child_seeds()
    for left, right in zip(a, b):
        assert left.generate_state(4).tolist() == right.generate_state(4).tolist()


def test_chunk_plan_validation():
    with pytest.raises(ValueError):
        ChunkPlan(n_total=0, n_chunks=1, seed=0)
    with pytest.raises(ValueError):
        ChunkPlan(n_total=4, n_chunks=5, seed=0)
    with pytest.raises(ValueError):
        ChunkPlan(n_total=4, n_chunks=2, seed=0).chunk(2)


# -------------------------------------------------------------- determinism


def test_chunked_run_is_deterministic(reference):
    again = Runner(n_chunks=N_CHUNKS).run(make_task(), N_WALKS, SEED).payload
    np.testing.assert_array_equal(again.times, reference.times)
    assert again.horizon == reference.horizon


def test_chunked_equals_manual_per_chunk_execution(reference):
    """The runner's contract: concat of independently seeded chunk runs."""
    plan = ChunkPlan(n_total=N_WALKS, n_chunks=N_CHUNKS, seed=SEED)
    pieces = [
        walk_hitting_times(
            LAW, TARGET, horizon=HORIZON, n=size, rng=np.random.default_rng(child)
        ).times
        for size, child in zip(plan.sizes(), plan.child_seeds())
    ]
    np.testing.assert_array_equal(np.concatenate(pieces), reference.times)


def test_pool_matches_serial(reference):
    outcome = Runner(n_chunks=N_CHUNKS, workers=2).run(make_task(), N_WALKS, SEED)
    np.testing.assert_array_equal(outcome.payload.times, reference.times)


def test_checkpointed_matches_uncheckpointed(tmp_path, reference):
    outcome = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS).run(
        make_task(), N_WALKS, SEED
    )
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    state = RunnerState.load(tmp_path / "sample")
    assert state.completed_indices == list(range(N_CHUNKS))


# ---------------------------------------------------------- crash-and-resume


@pytest.mark.parametrize(
    "mode", ["crash-before-write", "crash-after-write", "corrupt-checkpoint"]
)
def test_kill_and_resume_reproduces_single_shot(tmp_path, reference, mode):
    injector = FaultInjector(mode, chunk_index=2, arm_file=str(tmp_path / "armed"))
    arm(injector)
    with pytest.raises(FaultInjected):
        Runner(
            checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, fault_injector=injector
        ).run(make_task(), N_WALKS, SEED)
    outcome = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resume=True).run(
        make_task(), N_WALKS, SEED
    )
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    if mode == "crash-before-write":
        assert outcome.resumed_chunks == 2  # chunk 2 never reached disk
    elif mode == "crash-after-write":
        assert outcome.resumed_chunks == 3  # chunk 2 was durable before the crash
    else:
        assert outcome.quarantined  # garbled payload moved aside, recomputed
        assert outcome.resumed_chunks == 2


def test_hard_kill_subprocess_and_resume(tmp_path, reference):
    """A real ``os._exit`` kill (not an exception), then an in-process resume."""
    src_dir = Path(__file__).resolve().parents[1] / "src"
    script = f"""
import sys
sys.path.insert(0, {str(src_dir)!r})
from repro.distributions.zeta import ZetaJumpDistribution
from repro.runner import FaultInjector, HittingTimeTask, Runner, arm
injector = FaultInjector(
    "crash-after-write", chunk_index=1, arm_file={str(tmp_path / "armed")!r},
    hard_exit=True,
)
arm(injector)
task = HittingTimeTask(jumps=ZetaJumpDistribution(2.5), target={TARGET!r}, horizon={HORIZON})
Runner(checkpoint_dir={str(tmp_path)!r}, n_chunks={N_CHUNKS}, fault_injector=injector).run(
    task, {N_WALKS}, {SEED}
)
"""
    process = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, timeout=120
    )
    assert process.returncode == FaultInjector.EXIT_CODE, process.stderr
    state = RunnerState.load(tmp_path / "sample")
    assert state.completed_indices == [0, 1]
    outcome = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resume=True).run(
        make_task(), N_WALKS, SEED
    )
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    assert outcome.resumed_chunks == 2


def test_hang_timeout_retry(tmp_path, reference):
    injector = FaultInjector(
        "hang", chunk_index=1, arm_file=str(tmp_path / "armed"), hang_seconds=60.0
    )
    arm(injector)
    outcome = Runner(
        checkpoint_dir=tmp_path,
        n_chunks=N_CHUNKS,
        workers=1,
        chunk_timeout=1.0,
        fault_injector=injector,
        backoff_base=0.01,
    ).run(make_task(), N_WALKS, SEED)
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    assert outcome.retries >= 1
    assert not Path(tmp_path / "armed").exists()


def test_worker_death_retry(tmp_path, reference):
    injector = FaultInjector(
        "worker-kill", chunk_index=0, arm_file=str(tmp_path / "armed")
    )
    arm(injector)
    outcome = Runner(
        checkpoint_dir=tmp_path,
        n_chunks=N_CHUNKS,
        workers=2,
        fault_injector=injector,
        backoff_base=0.01,
    ).run(make_task(), N_WALKS, SEED)
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    assert outcome.retries >= 1


class AlwaysFailingTask:
    """Picklable task that fails on every attempt (retry-budget test)."""

    kind = "hitting"

    def __call__(self, n, seed):
        raise RuntimeError("synthetic permanent failure")

    def merge(self, plan, chunks):  # pragma: no cover - never reached
        raise AssertionError


def test_retry_budget_exhaustion_raises():
    with pytest.raises(ChunkFailedError):
        Runner(n_chunks=2, workers=1, max_retries=1, backoff_base=0.01).run(
            AlwaysFailingTask(), 10, SEED
        )


# ------------------------------------------------- damaged checkpoint loads


def _complete_checkpoint(tmp_path):
    Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS).run(make_task(), N_WALKS, SEED)
    return tmp_path / "sample"


def test_truncated_npz_quarantined_and_recomputed(tmp_path, reference):
    run_dir = _complete_checkpoint(tmp_path)
    payload = run_dir / "chunks" / "chunk_00001.npz"
    payload.write_bytes(payload.read_bytes()[:20])
    state = RunnerState.load(run_dir)
    assert state.completed_indices == [0, 2, 3]
    assert state.quarantined
    outcome = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resume=True).run(
        make_task(), N_WALKS, SEED
    )
    np.testing.assert_array_equal(outcome.payload.times, reference.times)


def test_stale_schema_version_quarantined(tmp_path, reference):
    import json

    run_dir = _complete_checkpoint(tmp_path)
    manifest_path = run_dir / "chunks" / "chunk_00002.json"
    meta = json.loads(manifest_path.read_text())
    meta["schema_version"] = 0
    manifest_path.write_text(json.dumps(meta))
    state = RunnerState.load(run_dir)
    assert 2 not in state.completed_indices
    assert state.quarantined
    outcome = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resume=True).run(
        make_task(), N_WALKS, SEED
    )
    np.testing.assert_array_equal(outcome.payload.times, reference.times)


def test_uncommitted_payload_without_manifest_quarantined(tmp_path):
    run_dir = _complete_checkpoint(tmp_path)
    (run_dir / "chunks" / "chunk_00003.json").unlink()
    state = RunnerState.load(run_dir)
    assert state.completed_indices == [0, 1, 2]
    assert state.quarantined


def test_runner_state_load_empty_directory(tmp_path):
    state = RunnerState.load(tmp_path / "nothing-here")
    assert state.manifest is None
    assert state.completed == {}


def test_existing_checkpoint_without_resume_refused(tmp_path):
    _complete_checkpoint(tmp_path)
    with pytest.raises(CheckpointExistsError):
        Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS).run(
            make_task(), N_WALKS, SEED
        )


def test_resume_with_different_run_identity_refused(tmp_path):
    _complete_checkpoint(tmp_path)
    with pytest.raises(CheckpointMismatchError):
        Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resume=True).run(
            make_task(), N_WALKS, SEED + 1
        )


def test_garbage_run_manifest_raises_corrupt_error(tmp_path):
    run_dir = _complete_checkpoint(tmp_path)
    (run_dir / "manifest.json").write_text("{not json")
    with pytest.raises(CorruptResultError):
        RunnerState.load(run_dir)


# ----------------------------------------------------- deadline degradation


class SlowTask:
    """Picklable wrapper adding a fixed delay per chunk."""

    kind = "hitting"

    def __init__(self, delay: float) -> None:
        self.inner = make_task()
        self.delay = delay

    def __call__(self, n, seed):
        time.sleep(self.delay)
        return self.inner(n, seed)

    def merge(self, plan, chunks):
        return self.inner.merge(plan, chunks)


def test_deadline_returns_degraded_partial_sample():
    runner = Runner(n_chunks=8, max_seconds=0.8)
    outcome = runner.run(SlowTask(0.25), N_WALKS, SEED)
    assert outcome.degraded and not outcome.interrupted
    assert 0 < outcome.completed_chunks < outcome.total_chunks
    payload = outcome.payload
    assert 0 < payload.n < N_WALKS  # a valid, smaller censored sample
    assert payload.horizon == HORIZON
    assert runner.degraded  # aggregate flag feeds the CLI's exit code
    assert any("degraded" in note for note in outcome.notes)


def test_degraded_checkpoint_can_be_resumed_to_completion(tmp_path, reference):
    task = SlowTask(0.3)
    Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, max_seconds=0.4).run(
        task, N_WALKS, SEED
    )
    outcome = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resume=True).run(
        task, N_WALKS, SEED
    )
    assert outcome.complete
    np.testing.assert_array_equal(outcome.payload.times, reference.times)


# ------------------------------------------------------------------ signals


class SignalingTask:
    """Sends SIGTERM to the current process once, after the first chunk."""

    kind = "hitting"

    def __init__(self, arm_file: str) -> None:
        self.inner = make_task()
        self.arm_file = arm_file

    def __call__(self, n, seed):
        payload = self.inner(n, seed)
        try:
            os.unlink(self.arm_file)
        except FileNotFoundError:
            pass
        else:
            os.kill(os.getpid(), signal.SIGTERM)
        return payload

    def merge(self, plan, chunks):
        return self.inner.merge(plan, chunks)


def test_sigterm_checkpoints_and_resumes(tmp_path, reference):
    arm_file = tmp_path / "armed"
    arm_file.touch()
    task = SignalingTask(str(arm_file))
    with trap_signals():
        outcome = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS).run(
            task, N_WALKS, SEED
        )
    assert outcome.interrupted and not outcome.degraded
    assert outcome.completed_chunks == 1
    resumed = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resume=True).run(
        task, N_WALKS, SEED
    )
    assert resumed.complete
    np.testing.assert_array_equal(resumed.payload.times, reference.times)


# ----------------------------------------------------------------- foraging


def test_foraging_chunks_merge_like_one_big_run():
    targets = ((3, 1), (0, 4), (-2, -2), (6, 0))
    task = ForagingTask(jumps=LAW, targets=targets, horizon=HORIZON)
    outcome = Runner(n_chunks=3).run(task, 90, SEED)
    plan = ChunkPlan(n_total=90, n_chunks=3, seed=SEED)
    # Manual reference: per-chunk engine runs merged by earliest crossing.
    best_time = np.full(len(targets), np.iinfo(np.int64).max, dtype=np.int64)
    best_walk = np.full(len(targets), -1, dtype=np.int64)
    for offset, size, child in zip(plan.offsets(), plan.sizes(), plan.child_seeds()):
        result = multi_target_search(
            LAW, list(targets), horizon=HORIZON, n=size, rng=np.random.default_rng(child)
        )
        observed = np.where(
            result.discovery_times < 0, np.iinfo(np.int64).max, result.discovery_times
        )
        better = observed < best_time
        best_time = np.where(better, observed, best_time)
        best_walk = np.where(
            better,
            np.where(result.discoverer >= 0, result.discoverer + offset, -1),
            best_walk,
        )
    expected_times = np.where(
        best_time == np.iinfo(np.int64).max, -1, best_time
    )
    np.testing.assert_array_equal(outcome.payload.discovery_times, expected_times)
    np.testing.assert_array_equal(outcome.payload.discoverer, best_walk)


def test_foraging_kill_and_resume(tmp_path):
    targets = ((3, 1), (0, 4), (-2, -2))
    task = ForagingTask(jumps=LAW, targets=targets, horizon=HORIZON)
    reference = Runner(n_chunks=3).run(task, 90, SEED).payload
    injector = FaultInjector(
        "crash-before-write", chunk_index=1, arm_file=str(tmp_path / "armed")
    )
    arm(injector)
    with pytest.raises(FaultInjected):
        Runner(checkpoint_dir=tmp_path, n_chunks=3, fault_injector=injector).run(
            task, 90, SEED
        )
    outcome = Runner(checkpoint_dir=tmp_path, n_chunks=3, resume=True).run(
        task, 90, SEED
    )
    np.testing.assert_array_equal(
        outcome.payload.discovery_times, reference.discovery_times
    )
    np.testing.assert_array_equal(outcome.payload.discoverer, reference.discoverer)
