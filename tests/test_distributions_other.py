"""Tests for the unit, constant and geometric jump laws."""

import math

import numpy as np
import pytest

from repro.distributions.geometric import GeometricJumpDistribution
from repro.distributions.unit import ConstantJumpDistribution, UnitJumpDistribution


# ------------------------------------------------------------------ unit


def test_unit_pmf_and_tail():
    law = UnitJumpDistribution(lazy_probability=0.5)
    assert float(law.pmf(0)) == 0.5
    assert float(law.pmf(1)) == 0.5
    assert float(law.pmf(2)) == 0.0
    assert float(law.tail(1)) == 0.5
    assert float(law.tail(2)) == 0.0
    assert float(law.tail(0)) == 1.0


def test_unit_moments():
    law = UnitJumpDistribution(lazy_probability=0.25)
    assert law.mean == pytest.approx(0.75)
    assert law.second_moment == pytest.approx(0.75)
    assert law.variance == pytest.approx(0.75 - 0.75**2)
    assert law.support_max == 1
    assert law.expected_steps_per_jump() == pytest.approx(1.0)


def test_unit_sampling(rng):
    law = UnitJumpDistribution(lazy_probability=0.5)
    samples = law.sample(rng, 20_000)
    assert set(np.unique(samples)) == {0, 1}
    assert abs(samples.mean() - 0.5) < 0.02


def test_unit_rejects_bad_laziness():
    with pytest.raises(ValueError):
        UnitJumpDistribution(lazy_probability=1.0)


# -------------------------------------------------------------- constant


def test_constant_law():
    law = ConstantJumpDistribution(5)
    assert float(law.pmf(5)) == 1.0
    assert float(law.pmf(4)) == 0.0
    assert float(law.tail(5)) == 1.0
    assert float(law.tail(6)) == 0.0
    assert law.mean == 5.0
    assert law.variance == pytest.approx(0.0)
    assert law.support_max == 5


def test_constant_sampling(rng):
    law = ConstantJumpDistribution(3)
    np.testing.assert_array_equal(law.sample(rng, 10), np.full(10, 3))


def test_constant_rejects_zero():
    with pytest.raises(ValueError):
        ConstantJumpDistribution(0)


# ------------------------------------------------------------- geometric


def test_geometric_pmf_normalization():
    law = GeometricJumpDistribution(q=0.8, lazy_probability=0.5)
    grid = np.arange(0, 500)
    assert float(np.sum(law.pmf(grid))) == pytest.approx(1.0, abs=1e-12)


def test_geometric_tail_consistency():
    law = GeometricJumpDistribution(q=0.6)
    for i in (1, 2, 7):
        assert float(law.tail(i) - law.tail(i + 1)) == pytest.approx(float(law.pmf(i)))


def test_geometric_with_mean():
    law = GeometricJumpDistribution.with_mean(10.0, lazy_probability=0.0)
    assert law.mean == pytest.approx(10.0)
    with pytest.raises(ValueError):
        GeometricJumpDistribution.with_mean(0.5)


def test_geometric_moments_against_simulation(rng):
    law = GeometricJumpDistribution(q=0.75, lazy_probability=0.5)
    samples = law.sample(rng, 200_000)
    assert samples.mean() == pytest.approx(law.mean, rel=0.03)
    assert np.mean(samples.astype(float) ** 2) == pytest.approx(
        law.second_moment, rel=0.05
    )


def test_geometric_tail_is_exponential():
    law = GeometricJumpDistribution(q=0.5, lazy_probability=0.0)
    # P(d >= i) = q^(i-1): halves each step.
    assert float(law.tail(4)) / float(law.tail(5)) == pytest.approx(2.0)
    assert law.support_max is None


def test_geometric_rejects_bad_q():
    with pytest.raises(ValueError):
        GeometricJumpDistribution(q=0.0)
    with pytest.raises(ValueError):
        GeometricJumpDistribution(q=1.0)
    with pytest.raises(ValueError):
        GeometricJumpDistribution(q=0.5, lazy_probability=-0.2)


def test_geometric_mean_finite():
    assert math.isfinite(GeometricJumpDistribution(q=0.99).mean)
