"""Tests for the phase profiler and the ``profile`` analysis command.

The acceptance bar (observability ISSUE 7): a pooled run with telemetry
enabled yields an event log from which ``repro-experiment profile``
reports per-phase engine seconds (summing to a meaningful share of
chunk time), per-worker utilization with effective parallelism, and IPC
byte/serialization accounting -- and the command degrades gracefully on
torn, killed, and pre-v3 logs with no ``phase_profile`` events.
"""

import json
import os

import numpy as np
import pytest

from repro import telemetry
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.ball_targets import ball_hitting_times
from repro.engine.multi_target import multi_target_search
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times
from repro.runner import HittingTimeTask, Runner
from repro.telemetry import (
    PHASES,
    PhaseAccumulator,
    TelemetryRecorder,
    read_events,
    render_profile,
    render_profile_diff,
    summarize_profile,
    use_recorder,
)
from repro.telemetry.bench_history import _kind, compare_snapshots

LAW = ZetaJumpDistribution(2.5)


def make_task() -> HittingTimeTask:
    return HittingTimeTask(jumps=LAW, target=(5, 3), horizon=150)


# ---------------------------------------------------------------- accumulator


def test_accumulator_laps_tile_and_drain_resets():
    acc = PhaseAccumulator()
    assert acc.empty and acc.drain() is None
    acc.start()
    acc.lap("rng")
    acc.lap("cdf_lookup")
    acc.finish("walk")
    acc.start()
    acc.lap("rng")
    drained = acc.drain()
    assert drained is not None
    phases, engines = drained
    assert set(phases) == {"rng", "cdf_lookup"}
    assert all(seconds >= 0.0 for seconds in phases.values())
    assert engines == {"walk": 1}
    # Drain resets: the accumulator is reusable for the next chunk.
    assert acc.empty and acc.drain() is None


def test_accumulator_accumulates_across_rounds():
    acc = PhaseAccumulator()
    acc.start()
    acc.lap("rng")
    first, _ = acc.drain()
    for _ in range(10):
        acc.start()
        acc.lap("rng")
    phases, _ = acc.drain()
    # Ten laps charge at least as much as one; nanos only accumulate.
    assert phases["rng"] >= first["rng"] > 0.0


# -------------------------------------------------------------- engine wiring


@pytest.mark.parametrize(
    "run_engine,engine_name",
    [
        (
            lambda rng: walk_hitting_times(LAW, (5, 3), horizon=100, n=200, rng=rng),
            "walk",
        ),
        (
            lambda rng: flight_hitting_times(LAW, (5, 3), horizon=50, n=200, rng=rng),
            "flight",
        ),
        (
            lambda rng: ball_hitting_times(
                LAW, (8, 6), radius=2, horizon=100, n=200, rng=rng
            ),
            "ball",
        ),
        (
            lambda rng: multi_target_search(
                LAW, [(5, 3), (9, 2)], horizon=100, n=200, rng=rng
            ),
            "multi_target",
        ),
    ],
)
def test_engines_charge_every_phase(run_engine, engine_name):
    with use_recorder(TelemetryRecorder()) as recorder:
        run_engine(np.random.default_rng(0))
        drained = recorder.profile.drain()
    assert drained is not None
    phases, engines = drained
    assert engines == {engine_name: 1}
    assert set(phases) == set(PHASES)
    assert all(seconds > 0.0 for seconds in phases.values())


def test_profile_disabled_leaves_accumulator_none():
    with use_recorder(TelemetryRecorder(profile=False)) as recorder:
        assert recorder.profile is None
        walk_hitting_times(
            LAW, (5, 3), horizon=100, n=200, rng=np.random.default_rng(0)
        )  # must not raise with the timers off


def test_profiling_does_not_perturb_results():
    baseline = walk_hitting_times(
        LAW, (5, 3), horizon=150, n=300, rng=np.random.default_rng(7)
    )
    with use_recorder(TelemetryRecorder()):
        traced = walk_hitting_times(
            LAW, (5, 3), horizon=150, n=300, rng=np.random.default_rng(7)
        )
    np.testing.assert_array_equal(baseline.times, traced.times)


def test_recorder_close_drains_residual_profile(tmp_path):
    """Engine calls outside any chunk surface as a residual event."""
    path = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=path)
    try:
        with use_recorder(recorder):
            walk_hitting_times(
                LAW, (5, 3), horizon=100, n=200, rng=np.random.default_rng(0)
            )
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    residual = [
        e for e in read_events(path) if e["type"] == "phase_profile"
    ]
    assert len(residual) == 1 and residual[0]["scope"] == "residual"
    assert set(residual[0]["phases"]) == set(PHASES)
    snapshot = recorder.metrics.snapshot()
    assert snapshot["engine.phase_seconds.rng"]["value"] > 0.0


# -------------------------------------------------------------- runner wiring


def _run_logged(tmp_path, workers: int, **kwargs):
    path = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=path, **kwargs)
    try:
        with use_recorder(recorder):
            Runner(n_chunks=4, workers=workers).run(
                make_task(), 400, seed=0, label="t1"
            )
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    return read_events(path)


def test_serial_run_emits_per_chunk_profiles(tmp_path):
    events = _run_logged(tmp_path, workers=0)
    profiles = [
        e for e in events if e["type"] == "phase_profile" and "chunk" in e
    ]
    ends = [e for e in events if e["type"] == "chunk_end"]
    assert len(profiles) == 4 and len(ends) == 4
    for event in profiles:
        assert set(event["phases"]) == set(PHASES)
        assert event["worker_id"] == os.getpid()
    for event in ends:
        assert event["worker_id"] == os.getpid()
    starts = [e for e in events if e["type"] == "chunk_start"]
    assert all(e["worker_id"] == os.getpid() for e in starts)
    # Phase seconds are bounded by the chunk walltime they tile.
    total_phase = sum(sum(e["phases"].values()) for e in profiles)
    total_chunk = sum(e["seconds"] for e in ends)
    assert 0.0 < total_phase <= total_chunk * 1.05


def test_pooled_run_profiles_across_the_process_boundary(tmp_path):
    events = _run_logged(tmp_path, workers=1)
    profiles = [
        e for e in events if e["type"] == "phase_profile" and "chunk" in e
    ]
    ends = [e for e in events if e["type"] == "chunk_end"]
    assert len(profiles) == 4 and len(ends) == 4
    for event in profiles:
        assert set(event["phases"]) == set(PHASES)
        assert isinstance(event["worker_id"], int)
    # Worker pid, not the parent's: the chunk ran in a pool process.
    for event in ends:
        assert isinstance(event["worker_id"], int)
        assert event["ipc_bytes"] > 0
        assert event["pickle_seconds"] >= 0.0
        assert event["unpickle_seconds"] >= 0.0


def test_pooled_run_respects_profile_false(tmp_path):
    events = _run_logged(tmp_path, workers=1, profile=False)
    assert [e for e in events if e["type"] == "phase_profile"] == []
    assert len([e for e in events if e["type"] == "chunk_end"]) == 4


def test_profile_metrics_counters(tmp_path):
    path = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=path)
    try:
        with use_recorder(recorder):
            Runner(n_chunks=2, workers=1).run(make_task(), 200, seed=0, label="t1")
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    snapshot = recorder.metrics.snapshot()
    for phase in PHASES:
        assert snapshot[f"engine.phase_seconds.{phase}"]["value"] > 0.0
    assert snapshot["runner.ipc_bytes"]["value"] > 0
    assert snapshot["runner.pickle_seconds"]["value"] >= 0.0
    assert snapshot["runner.unpickle_seconds"]["value"] >= 0.0


def test_profiling_preserves_determinism(tmp_path):
    reference = Runner(n_chunks=4).run(make_task(), 400, seed=0, label="ref")
    recorder = telemetry.configure(log_path=tmp_path / "events.jsonl")
    try:
        with use_recorder(recorder):
            profiled = Runner(n_chunks=4).run(make_task(), 400, seed=0, label="t1")
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    np.testing.assert_array_equal(reference.payload.times, profiled.payload.times)


# ------------------------------------------------------------------- analysis


def test_summarize_profile_aggregates(tmp_path):
    events = _run_logged(tmp_path, workers=0)
    summary = summarize_profile(events)
    assert summary.profile_events >= 4
    assert set(summary.phase_seconds) == set(PHASES)
    assert summary.engine_calls.get("walk", 0) >= 4
    assert len(summary.chunks) == 4
    assert summary.walks == 400
    assert str(os.getpid()) in summary.workers
    # Every chunk row got its phase attribution joined on.
    assert all(row["phases"] for row in summary.chunks)
    parallelism = summary.effective_parallelism
    assert parallelism is not None and parallelism > 0.0


def test_render_profile_full_log(tmp_path):
    events = _run_logged(tmp_path, workers=1)
    text = render_profile(events)
    assert "engine phase breakdown" in text
    assert "cdf_lookup" in text
    assert "worker utilization" in text
    assert "effective parallelism" in text
    assert "IPC:" in text
    assert "slowest" in text


def test_render_profile_degrades_without_phase_events(tmp_path):
    """A pre-v3 log (no phase_profile) still gets worker/chunk analysis."""
    events = [
        e for e in _run_logged(tmp_path, workers=0) if e["type"] != "phase_profile"
    ]
    text = render_profile(events)
    assert "phase breakdown unavailable" in text
    assert "worker utilization" in text
    assert "slowest" in text


def test_render_profile_on_torn_and_killed_log(tmp_path):
    """A kill mid-run leaves a torn tail and no run_end; profile survives."""
    _run_logged(tmp_path, workers=0)
    path = tmp_path / "events.jsonl"
    lines = path.read_text(encoding="utf-8").splitlines()
    # Drop the clean trailer and tear the final line, the kill signature.
    kept = [line for line in lines if '"log_close"' not in line]
    path.write_text("\n".join(kept[:-1]) + "\n" + kept[-1][: len(kept[-1]) // 2])
    events = read_events(path)
    text = render_profile(events)
    assert "worker utilization" in text


def test_render_profile_empty_log():
    text = render_profile([])
    assert "no chunk_end events found" in text
    assert "phase breakdown unavailable" in text


def test_render_profile_diff(tmp_path):
    events = _run_logged(tmp_path / "a", workers=0)
    baseline = _run_logged(tmp_path / "b", workers=0)
    text = render_profile_diff(events, baseline)
    assert "phase breakdown vs baseline" in text
    assert "chunk seconds" in text
    assert "walks/sec" in text
    diff_no_phases = render_profile_diff(
        [e for e in events if e["type"] != "phase_profile"],
        [e for e in baseline if e["type"] != "phase_profile"],
    )
    assert "comparing chunk timings only" in diff_no_phases


# ------------------------------------------------------------------ heartbeat


def test_heartbeat_file_carries_worker_pid(tmp_path):
    from repro.runner.supervision import Supervisor, WorkerHeartbeat

    supervisor = Supervisor(tmp_path, timeout=60.0)
    WorkerHeartbeat(supervisor.heartbeat_path("t1", 0))  # first touch stamps pid
    assert supervisor.worker_pid("t1", 0) == os.getpid()
    assert supervisor.worker_pid("t1", 99) is None  # no file -> no pid


# ------------------------------------------------------------ speedup history


def test_bench_history_speedup_kind():
    assert _kind("pool_speedup") == "speedup"
    threshold = 0.25
    fell = compare_snapshots(
        {"pool_speedup": 1.5}, {"pool_speedup": 1.2}, threshold
    )
    assert fell[0].kind == "speedup" and fell[0].regressed
    wobble = compare_snapshots(
        {"pool_speedup": 1.5}, {"pool_speedup": 1.4}, threshold
    )
    assert not wobble[0].regressed
    rose = compare_snapshots(
        {"pool_speedup": 1.5}, {"pool_speedup": 2.0}, threshold
    )
    assert not rose[0].regressed  # a rising speedup never regresses


# ------------------------------------------------------------------ watch/CLI


def test_watch_state_effective_parallelism():
    from repro.telemetry.watch import WatchState, render_watch

    state = WatchState()
    state.consume(
        [
            {"type": "log_open", "t": 0.0, "schema": 3},
            {
                "type": "chunk_end", "t": 1.0, "chunk": 0, "n": 100,
                "seconds": 1.0, "worker_id": 11, "label": "t1",
            },
            {
                "type": "chunk_end", "t": 1.0, "chunk": 1, "n": 100,
                "seconds": 1.0, "worker_id": 12, "label": "t1",
            },
        ]
    )
    parallelism = state.effective_parallelism()
    assert parallelism == pytest.approx(2.0)
    frame = render_watch(state)
    assert "effective parallelism: 2.00x" in frame
    assert "2 worker(s) seen" in frame


def test_cli_profile_command(tmp_path, capsys):
    from repro.cli import EXIT_OK, EXIT_USAGE, main

    events = _run_logged(tmp_path, workers=0)
    log = tmp_path / "events.jsonl"
    assert main(["profile", str(log)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "engine phase breakdown" in out
    assert main(["profile", str(log), "--diff", str(log)]) == EXIT_OK
    assert "phase breakdown vs baseline" in capsys.readouterr().out
    assert main(["profile", str(tmp_path / "nope.jsonl")]) == EXIT_USAGE


def test_report_includes_phase_breakdown(tmp_path):
    from repro.telemetry import render_report, summarize_events

    events = _run_logged(tmp_path, workers=0)
    summary = summarize_events(events)
    assert set(summary["phase_seconds"]) == set(PHASES)
    text = render_report(events)
    assert "engine phase breakdown" in text
    assert "repro-experiment profile" in text
