"""Unit tests for repro.lattice.rings (rings, balls, boxes, sampling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.points import l1_norm, linf_norm
from repro.lattice.rings import (
    ball_nodes,
    ball_size,
    box_nodes,
    box_size,
    iter_ring_offsets,
    offset_to_ring_index,
    ring_index_to_offset,
    ring_nodes,
    ring_size,
    sample_ring_offsets,
)


# ------------------------------------------------------------- cardinalities


@pytest.mark.parametrize("d,expected", [(0, 1), (1, 4), (2, 8), (5, 20), (100, 400)])
def test_ring_size(d, expected):
    assert ring_size(d) == expected


@pytest.mark.parametrize("d", [0, 1, 2, 3, 7])
def test_ball_size_matches_enumeration(d):
    assert ball_size(d) == len(ball_nodes((0, 0), d))


@pytest.mark.parametrize("d", [0, 1, 2, 5])
def test_box_size_matches_enumeration(d):
    assert box_size(d) == len(box_nodes((3, -2), d))


def test_negative_radius_rejected():
    with pytest.raises(ValueError):
        ring_size(-1)
    with pytest.raises(ValueError):
        ball_size(-2)
    with pytest.raises(ValueError):
        box_size(-3)


# ---------------------------------------------------------------- bijection


@pytest.mark.parametrize("d", [1, 2, 3, 8, 17])
def test_ring_index_bijection(d):
    offsets = [ring_index_to_offset(d, j) for j in range(ring_size(d))]
    assert len(set(offsets)) == ring_size(d)
    for offset in offsets:
        assert l1_norm(offset) == d
    for j, offset in enumerate(offsets):
        assert offset_to_ring_index(offset) == j


def test_ring_index_out_of_range():
    with pytest.raises(ValueError):
        ring_index_to_offset(3, 12)
    with pytest.raises(ValueError):
        ring_index_to_offset(0, 1)


def test_ring_nodes_center_shift():
    nodes = ring_nodes((10, -5), 2)
    assert len(nodes) == 8
    assert all(abs(x - 10) + abs(y + 5) == 2 for x, y in nodes)


def test_ball_nodes_content():
    nodes = set(ball_nodes((0, 0), 2))
    assert (0, 0) in nodes
    assert (2, 0) in nodes and (0, -2) in nodes and (1, 1) in nodes
    assert (2, 1) not in nodes


def test_box_nodes_content():
    nodes = set(box_nodes((0, 0), 1))
    assert nodes == {(x, y) for x in (-1, 0, 1) for y in (-1, 0, 1)}
    assert all(linf_norm(n) <= 1 for n in nodes)


# ----------------------------------------------------------------- sampling


def test_sample_ring_offsets_zero_distance(rng):
    out = sample_ring_offsets(np.zeros(10, dtype=np.int64), rng)
    np.testing.assert_array_equal(out, np.zeros((10, 2)))


def test_sample_ring_offsets_correct_distance(rng):
    d = np.array([1, 2, 3, 10, 1000, 0, 7] * 100, dtype=np.int64)
    out = sample_ring_offsets(d, rng)
    np.testing.assert_array_equal(np.abs(out).sum(axis=1), d)


def test_sample_ring_offsets_rejects_negative(rng):
    with pytest.raises(ValueError):
        sample_ring_offsets(np.array([1, -1]), rng)


def test_sample_ring_offsets_rejects_2d(rng):
    with pytest.raises(ValueError):
        sample_ring_offsets(np.ones((2, 2), dtype=np.int64), rng)


def test_sample_ring_offsets_uniform_chi_square(rng):
    """Chi-square goodness of fit for uniformity on R_3 (12 nodes)."""
    d = 3
    n = 60_000
    out = sample_ring_offsets(np.full(n, d, dtype=np.int64), rng)
    nodes = list(iter_ring_offsets(d))
    counts = {node: 0 for node in nodes}
    for x, y in map(tuple, out):
        counts[(x, y)] += 1
    expected = n / len(nodes)
    chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
    # 11 dof; P(chi2 > 35) < 2.5e-4.
    assert chi2 < 35.0


def test_sample_ring_offsets_covers_all_nodes(rng):
    d = 2
    out = sample_ring_offsets(np.full(4_000, d, dtype=np.int64), rng)
    seen = set(map(tuple, out))
    assert seen == set(iter_ring_offsets(d))


@settings(max_examples=25)
@given(st.integers(min_value=1, max_value=10**6))
def test_sample_ring_offsets_huge_radii(d):
    rng = np.random.default_rng(d)
    out = sample_ring_offsets(np.full(16, d, dtype=np.int64), rng)
    np.testing.assert_array_equal(np.abs(out).sum(axis=1), d)
