"""Tests for the object-level jump processes (Definitions 3.3 / 3.4)."""

import math

import numpy as np
import pytest

from repro.distributions.unit import ConstantJumpDistribution, UnitJumpDistribution
from repro.walks import (
    BallisticWalk,
    LevyFlight,
    LevyWalk,
    SimpleRandomWalk,
    displacement,
    ray_node,
)
from repro.lattice.points import l1_distance, l1_norm


# ------------------------------------------------------------- base class


def test_run_returns_full_trajectory(rng):
    walk = SimpleRandomWalk(rng=rng)
    trajectory = walk.run(25)
    assert len(trajectory) == 26
    assert trajectory[0] == (0, 0)
    assert walk.time == 25


def test_reset(rng):
    walk = LevyWalk(2.5, start=(3, 4), rng=rng)
    walk.run(10)
    walk.reset()
    assert walk.position == (3, 4)
    assert walk.time == 0
    assert not walk.in_phase


def test_hitting_time_at_start(rng):
    walk = LevyWalk(2.5, start=(2, 2), rng=rng)
    assert walk.hitting_time((2, 2), horizon=10) == 0


def test_hitting_time_none_when_unreached(rng):
    walk = SimpleRandomWalk(rng=rng)
    # A target at distance 50 cannot be reached in 10 steps.
    assert walk.hitting_time((50, 0), horizon=10) is None
    assert walk.time == 10


def test_displacement_helper(rng):
    walk = SimpleRandomWalk(start=(5, 5), rng=rng)
    walk.run(7)
    assert displacement(walk) == l1_distance(walk.position, (5, 5))


# ------------------------------------------------------------ Levy flight


def test_flight_jump_lengths_follow_law(rng):
    flight = LevyFlight(ConstantJumpDistribution(4), rng=rng)
    previous = flight.position
    for _ in range(50):
        current = flight.advance()
        assert l1_distance(previous, current) == 4
        previous = current


def test_flight_alpha_property(rng):
    assert LevyFlight(2.5, rng=rng).alpha == 2.5
    assert LevyFlight(UnitJumpDistribution(), rng=rng).alpha is None


def test_flight_one_jump_per_step(rng):
    flight = LevyFlight(2.5, rng=rng)
    flight.run(20)
    assert flight.time == 20


# -------------------------------------------------------------- Levy walk


def test_walk_moves_one_step_at_a_time(rng):
    walk = LevyWalk(2.2, rng=rng)
    previous = walk.position
    for _ in range(300):
        current = walk.advance()
        assert l1_distance(previous, current) <= 1
        previous = current


def test_walk_zero_jump_stays_one_step(rng):
    walk = LevyWalk(ConstantJumpDistribution(1), rng=rng)
    # Constant distance 1: every phase is a single unit step.
    previous = walk.position
    for _ in range(20):
        current = walk.advance()
        assert l1_distance(previous, current) == 1
        previous = current


def test_walk_phase_traverses_direct_path(rng):
    walk = LevyWalk(ConstantJumpDistribution(6), rng=rng)
    trajectory = walk.run(6)
    # One full phase: positions at L1 distances 0..6 from the start.
    for i, node in enumerate(trajectory):
        assert l1_distance((0, 0), node) == i


def test_walk_endpoint_matches_flight_law(rng):
    """After one full phase the walk endpoint has the flight's jump law."""
    n = 6_000
    lengths = []
    for _ in range(n):
        walk = LevyWalk(ConstantJumpDistribution(3), rng=rng)
        walk.advance()
        walk.advance()
        walk.advance()
        lengths.append(l1_norm(walk.position))
    assert set(lengths) == {3}


def test_walk_in_phase_flag(rng):
    walk = LevyWalk(ConstantJumpDistribution(5), rng=rng)
    walk.advance()
    assert walk.in_phase
    for _ in range(4):
        walk.advance()
    assert not walk.in_phase


# -------------------------------------------------- simple random walk


def test_srw_step_size(rng):
    walk = SimpleRandomWalk(rng=rng)
    previous = walk.position
    for _ in range(200):
        current = walk.advance()
        assert l1_distance(previous, current) <= 1
        previous = current


def test_srw_laziness_zero_always_moves(rng):
    walk = SimpleRandomWalk(laziness=0.0, rng=rng)
    previous = walk.position
    for _ in range(100):
        current = walk.advance()
        assert l1_distance(previous, current) == 1
        previous = current


def test_srw_rejects_bad_laziness():
    with pytest.raises(ValueError):
        SimpleRandomWalk(laziness=1.0)


def test_srw_is_unbiased(rng):
    positions = []
    for _ in range(400):
        walk = SimpleRandomWalk(rng=rng)
        walk.run(30)
        positions.append(walk.position)
    mean = np.mean(positions, axis=0)
    assert abs(mean[0]) < 0.8 and abs(mean[1]) < 0.8


# ------------------------------------------------------------- ballistic


def test_ballistic_unit_speed(rng):
    walk = BallisticWalk(rng=rng)
    previous = walk.position
    for i in range(1, 100):
        current = walk.advance()
        assert l1_distance(previous, current) == 1
        assert l1_norm(current) == i
        previous = current


def test_ray_node_axis():
    assert ray_node((0, 0), 0.0, 5) == (5, 0)
    assert ray_node((0, 0), math.pi / 2, 7) == (0, 7)
    assert ray_node((2, 1), math.pi, 3) == (-1, 1)


def test_ray_node_diagonal():
    node = ray_node((0, 0), math.pi / 4, 10)
    assert node == (5, 5)


def test_ballistic_never_returns(rng):
    walk = BallisticWalk(rng=rng)
    assert walk.hitting_time((0, 0), horizon=50) == 0  # starts there
    walk2 = BallisticWalk(rng=rng)
    walk2.advance()
    # Once it has left, the origin is behind it forever.
    distances = [l1_norm(walk2.advance()) for _ in range(50)]
    assert distances == sorted(distances)
