"""Interleaved walker-ring hot loop: scope plumbing, determinism, law.

The ring loop stages several rounds per pass (all RNG draws, then all
CDF lookups, then all state updates), which *reorders RNG consumption*
relative to the legacy per-round loop.  The contract is therefore
equivalence in law, not bit-identity: ring samples must pass a
chi-square homogeneity gate against legacy samples, while within one
ring setting everything stays exactly deterministic and identical
across serial/pooled execution (covered by the runner suite).
"""

import numpy as np
import pytest
from scipy import stats

from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.ball_targets import ball_hitting_times
from repro.engine.results import CENSORED
from repro.engine.ring import (
    DEFAULT_RING_ROUNDS,
    ring_rounds,
    ring_scope,
    set_ring_rounds,
)
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times

LAW = ZetaJumpDistribution(2.5)
TARGET = (5, 3)
HORIZON = 200
N = 4_000


# ------------------------------------------------------------------ plumbing


def test_ring_rounds_defaults_to_legacy_loop():
    assert ring_rounds() == 0


def test_set_ring_rounds_returns_previous_and_validates():
    previous = set_ring_rounds(4)
    try:
        assert previous == 0
        assert ring_rounds() == 4
    finally:
        set_ring_rounds(previous)
    with pytest.raises(ValueError):
        set_ring_rounds(-1)


def test_ring_scope_restores_on_exit_and_on_error():
    with ring_scope(DEFAULT_RING_ROUNDS):
        assert ring_rounds() == DEFAULT_RING_ROUNDS
    assert ring_rounds() == 0
    with pytest.raises(RuntimeError):
        with ring_scope(3):
            raise RuntimeError("boom")
    assert ring_rounds() == 0


# -------------------------------------------------------------- determinism


def _walk(seed, rounds=0, **kw):
    with ring_scope(rounds):
        return walk_hitting_times(
            LAW, TARGET, horizon=HORIZON, n=N,
            rng=np.random.default_rng(seed), **kw
        )


def test_ring_walk_is_deterministic_per_seed():
    a = _walk(7, rounds=8)
    b = _walk(7, rounds=8)
    np.testing.assert_array_equal(a.times, b.times)


def test_ring_walk_differs_from_legacy_stream():
    # Different RNG consumption order: equality would mean the scope
    # never took effect.
    assert not np.array_equal(_walk(7, rounds=8).times, _walk(7).times)


def test_rounds_of_one_matches_legacy_dispatch():
    # rounds=1 stages a single round per pass: the engine keeps the
    # legacy loop (cheaper; no tiling overhead) rather than delegating.
    np.testing.assert_array_equal(_walk(7, rounds=1).times, _walk(7).times)


def test_start_on_target_short_circuits_before_delegation():
    sample = _walk(7, rounds=8, start=TARGET)
    assert np.all(sample.times == 0)


# ------------------------------------------------------------ law equivalence


def _chi2_homogeneity(a: np.ndarray, b: np.ndarray, edges) -> float:
    """p-value of the two-sample chi-square homogeneity test on ``edges``."""
    ca, _ = np.histogram(a, bins=edges)
    cb, _ = np.histogram(b, bins=edges)
    keep = (ca + cb) >= 10  # merge ultra-sparse cells away
    table = np.vstack([ca[keep], cb[keep]])
    return float(stats.chi2_contingency(table).pvalue)


def _edges():
    # Geometric time bins over [1, horizon] plus a censored-mass cell.
    bins = np.unique(np.geomspace(1, HORIZON + 1, 12).astype(int))
    return np.concatenate([[CENSORED - 0.5], bins.astype(float)])


@pytest.mark.parametrize("detect", [True, False])
def test_walk_ring_matches_legacy_in_law(detect):
    legacy = _walk(11, detect_during_jump=detect)
    ring = _walk(12, rounds=8, detect_during_jump=detect)
    assert _chi2_homogeneity(legacy.times, ring.times, _edges()) > 1e-3


def test_flight_ring_matches_legacy_in_law():
    def flights(seed, rounds):
        with ring_scope(rounds):
            return flight_hitting_times(
                LAW, TARGET, horizon=60, n=N, rng=np.random.default_rng(seed)
            )

    legacy = flights(21, 0)
    ring = flights(22, 8)
    edges = np.concatenate([[CENSORED - 0.5], np.arange(1, 62, 6, dtype=float)])
    assert _chi2_homogeneity(legacy.times, ring.times, edges) > 1e-3


@pytest.mark.parametrize("detect", [True, False])
def test_ball_ring_matches_legacy_in_law(detect):
    def balls(seed, rounds):
        with ring_scope(rounds):
            return ball_hitting_times(
                LAW, (9, 6), radius=2, horizon=HORIZON, n=N,
                rng=np.random.default_rng(seed), detect_during_jump=detect,
            )

    legacy = balls(31, 0)
    ring = balls(32, 8)
    assert _chi2_homogeneity(legacy.times, ring.times, _edges()) > 1e-3


def test_ring_hit_rate_tracks_legacy():
    legacy = _walk(41)
    ring = _walk(42, rounds=8)
    p_legacy = np.mean(legacy.times != CENSORED)
    p_ring = np.mean(ring.times != CENSORED)
    # Two-proportion z-gate, generous: 5 sigma of the pooled std error.
    pooled = (p_legacy + p_ring) / 2
    sigma = np.sqrt(2 * pooled * (1 - pooled) / N)
    assert abs(p_legacy - p_ring) < 5 * sigma + 1e-9
