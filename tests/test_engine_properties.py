"""Hypothesis property tests for engine invariants.

These check *logical* invariants that must hold for every parameter
combination -- complementing the statistical cross-validation tests.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.ball_targets import ball_hitting_times
from repro.engine.results import CENSORED, group_minimum
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times

alphas = st.floats(min_value=1.2, max_value=4.0)
small_coords = st.integers(min_value=-15, max_value=15)
targets = st.tuples(small_coords, small_coords)


@settings(max_examples=25, deadline=None)
@given(alphas, targets, st.integers(0, 200), st.integers(1, 64))
def test_walk_hit_times_respect_distance_and_horizon(alpha, target, horizon, n):
    rng = np.random.default_rng(7)
    sample = walk_hitting_times(ZetaJumpDistribution(alpha), target, horizon=horizon, n=n, rng=rng)
    distance = abs(target[0]) + abs(target[1])
    assert sample.n == n
    assert sample.horizon == horizon
    hits = sample.hit_times()
    if distance == 0:
        assert np.all(sample.times == 0)
    else:
        assert np.all(hits >= distance)
        assert np.all(hits <= horizon)
    # times array contains only CENSORED or valid steps (validated by the
    # container, but assert the sentinel convention explicitly).
    assert set(np.unique(sample.times[sample.times < 0])) <= {CENSORED}


@settings(max_examples=20, deadline=None)
@given(alphas, targets, st.integers(0, 100), st.integers(1, 32))
def test_flight_hit_times_in_jump_units(alpha, target, horizon, n):
    rng = np.random.default_rng(11)
    sample = flight_hitting_times(ZetaJumpDistribution(alpha), target, horizon=horizon, n=n, rng=rng)
    hits = sample.hit_times()
    assert np.all(hits >= (1 if target != (0, 0) else 0))
    assert np.all(hits <= horizon)


@settings(max_examples=20, deadline=None)
@given(alphas, targets, st.integers(0, 5), st.integers(1, 150), st.integers(1, 32))
def test_ball_hit_times_respect_boundary_distance(alpha, center, radius, horizon, n):
    rng = np.random.default_rng(13)
    sample = ball_hitting_times(
        ZetaJumpDistribution(alpha), center, radius=radius, horizon=horizon, n=n, rng=rng
    )
    distance = abs(center[0]) + abs(center[1])
    hits = sample.hit_times()
    if distance <= radius:
        assert np.all(sample.times == 0)
    else:
        assert np.all(hits >= distance - radius)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.one_of(st.just(CENSORED), st.integers(0, 1000)),
        min_size=1,
        max_size=60,
    ),
    st.integers(1, 6),
)
def test_group_minimum_properties(times_list, k):
    times = np.asarray(times_list * k, dtype=np.int64)  # length divisible by k
    out = group_minimum(times, k)
    assert out.shape == (times.size // k,)
    grouped = times.reshape(-1, k)
    for row, value in zip(grouped, out):
        real = row[row != CENSORED]
        if real.size:
            assert value == real.min()
        else:
            assert value == CENSORED


@settings(max_examples=15, deadline=None)
@given(alphas, st.integers(1, 40), st.integers(50, 300))
def test_restricted_is_monotone_in_horizon(alpha, distance, horizon):
    rng = np.random.default_rng(17)
    target = (distance, 0)
    sample = walk_hitting_times(
        ZetaJumpDistribution(alpha), target, horizon=horizon, n=200, rng=rng
    )
    half = sample.restricted(horizon // 2)
    assert half.n_hits <= sample.n_hits
    assert half.hit_fraction <= sample.hit_fraction + 1e-12
    # probability_by is a CDF: non-decreasing.
    previous = 0.0
    for t in range(0, horizon + 1, max(1, horizon // 7)):
        current = sample.probability_by(t)
        assert current >= previous
        previous = current
