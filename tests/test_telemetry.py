"""Tests for the telemetry subsystem: metrics, event logs, spans, wiring.

The acceptance bar (observability ISSUE): with an event log enabled, a
run that is killed and resumed yields a JSONL log from which
``repro-experiment report`` reconstructs the full chunk timeline --
including the quarantined checkpoint and the retried chunks -- and with
telemetry disabled (the default) nothing is recorded anywhere.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times
from repro.io_utils import CorruptResultError
from repro.runner import (
    FaultInjected,
    FaultInjector,
    HittingTimeTask,
    Runner,
    arm,
)
from repro.telemetry import (
    DECADE_BOUNDS,
    EventLogWriter,
    MetricsRegistry,
    NullRecorder,
    TelemetryRecorder,
    get_recorder,
    read_events,
    render_report,
    summarize_events,
    use_recorder,
)

LAW = ZetaJumpDistribution(2.5)


def make_task() -> HittingTimeTask:
    return HittingTimeTask(jumps=LAW, target=(5, 3), horizon=150)


# ------------------------------------------------------------------- metrics


def test_counter_accumulates_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("x.events")
    counter.add()
    counter.add(4)
    assert registry.counter("x.events").value == 5  # get-or-create, same object
    with pytest.raises(ValueError):
        counter.add(-1)


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("x.rate").set(10.0)
    registry.gauge("x.rate").set(2.5)
    assert registry.gauge("x.rate").value == 2.5


def test_histogram_buckets_and_stats():
    registry = MetricsRegistry()
    hist = registry.histogram("x.seconds", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.counts == [1, 1, 1, 1]  # under, two interior, overflow
    assert hist.total == 4
    assert hist.min == 0.5 and hist.max == 500.0


def test_histogram_bulk_bucket_counts():
    registry = MetricsRegistry()
    hist = registry.histogram("x.decades", bounds=DECADE_BOUNDS)
    counts = np.bincount(
        np.digitize([0, 3, 30, 30], DECADE_BOUNDS), minlength=len(DECADE_BOUNDS) + 1
    )
    hist.add_bucket_counts(counts.tolist())
    assert hist.total == 4
    assert hist.counts[0] == 1  # d < 1 (lazy)
    assert hist.counts[1] == 1  # 1 <= d < 10
    assert hist.counts[2] == 2  # 10 <= d < 100
    with pytest.raises(ValueError):
        hist.add_bucket_counts([0] * (len(DECADE_BOUNDS) + 2))


def test_registry_rejects_kind_and_bounds_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    registry.histogram("h", bounds=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("h", bounds=(1.0, 3.0))


def test_snapshot_write_json(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").add(2)
    registry.gauge("b").set(1.5)
    registry.histogram("c", bounds=(1.0,)).observe(0.5)
    path = tmp_path / "metrics.json"
    registry.write_json(path)
    snapshot = json.loads(path.read_text())
    assert snapshot["a"] == {"type": "counter", "value": 2}
    assert snapshot["b"]["value"] == 1.5
    assert snapshot["c"]["counts"] == [1, 0]


# ---------------------------------------------------------------- event logs


def test_event_log_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLogWriter(path) as writer:
        writer.write({"type": "a", "n": 1})
        writer.write({"type": "b", "n": 2})
    events = read_events(path)
    assert [event["type"] for event in events] == ["log_open", "a", "b", "log_close"]
    assert events[0]["schema"] == telemetry.SCHEMA_VERSION


def test_event_log_tolerates_truncated_final_line(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLogWriter(path) as writer:
        writer.write({"type": "a"})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type":"torn-by-a-ki')  # kill signature: no newline
    events = read_events(path, strict=True)  # even strict tolerates the tail
    assert [event["type"] for event in events] == ["log_open", "a", "log_close"]


def test_event_log_strict_rejects_interior_corruption(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"type":"a"}\nnot json at all\n{"type":"b"}\n')
    assert [e["type"] for e in read_events(path)] == ["a", "b"]  # default skips
    with pytest.raises(CorruptResultError):
        read_events(path, strict=True)


def test_writer_refuses_after_close(tmp_path):
    writer = EventLogWriter(tmp_path / "events.jsonl")
    writer.close()
    with pytest.raises(ValueError):
        writer.write({"type": "late"})


def test_writer_buffers_until_flush(tmp_path):
    path = tmp_path / "events.jsonl"
    writer = EventLogWriter(path)
    try:
        # log_open is flushed eagerly; subsequent events sit in memory.
        assert [e["type"] for e in read_events(path)] == ["log_open"]
        writer.write({"type": "a"})
        writer.write({"type": "b"})
        assert [e["type"] for e in read_events(path)] == ["log_open"]
        writer.flush()
        assert [e["type"] for e in read_events(path)] == ["log_open", "a", "b"]
    finally:
        writer.close()
    assert [e["type"] for e in read_events(path)][-1] == "log_close"


def test_writer_auto_flushes_past_threshold(tmp_path):
    path = tmp_path / "events.jsonl"
    writer = EventLogWriter(path, auto_flush_bytes=256)
    try:
        for n in range(40):  # ~25 bytes/line blows the 256-byte buffer fast
            writer.write({"type": "tick", "n": n})
        on_disk = read_events(path)
        assert len(on_disk) > 1  # auto-flush ran without an explicit flush()
    finally:
        writer.close()


def test_recorder_flushes_chunk_boundaries_buffers_rest(tmp_path):
    """Boundary events land on disk immediately; chatter waits in memory."""
    path = tmp_path / "events.jsonl"
    recorder = TelemetryRecorder(writer=EventLogWriter(path))
    recorder.event("span_start", name="x")  # not a flush type
    assert "span_start" not in {e["type"] for e in read_events(path)}
    recorder.event("chunk_end", chunk=0, n=10, seconds=0.1)  # flush type
    types = [e["type"] for e in read_events(path)]
    assert types == ["log_open", "span_start", "chunk_end"]
    recorder.close()


# ------------------------------------------------------------------ recorder


def test_default_recorder_is_disabled_null():
    recorder = get_recorder()
    assert isinstance(recorder, NullRecorder)
    assert recorder.enabled is False
    with recorder.span("anything"):
        recorder.event("ignored")  # must not raise, must not record


def test_events_carry_time_context_and_span(tmp_path):
    path = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=path, context={"seed": 7})
    try:
        recorder.bind(experiment="EXP-X")
        with recorder.span("outer") as outer_id:
            with recorder.span("inner") as inner_id:
                recorder.event("probe", detail="deep")
        recorder.unbind("experiment")
        recorder.event("probe", detail="shallow")
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    events = read_events(path)
    deep = next(e for e in events if e.get("detail") == "deep")
    assert deep["seed"] == 7 and deep["experiment"] == "EXP-X"
    assert deep["span"] == inner_id and deep["t"] >= 0.0
    inner_start = next(
        e for e in events if e["type"] == "span_start" and e["name"] == "inner"
    )
    assert inner_start["parent"] == outer_id
    shallow = next(e for e in events if e.get("detail") == "shallow")
    assert "experiment" not in shallow and "span" not in shallow
    ends = [e for e in events if e["type"] == "span_end"]
    assert all(e["ok"] for e in ends) and all(e["seconds"] >= 0.0 for e in ends)


def test_span_end_emitted_on_raise(tmp_path):
    path = tmp_path / "events.jsonl"
    recorder = TelemetryRecorder(writer=EventLogWriter(path))
    with pytest.raises(RuntimeError):
        with recorder.span("doomed"):
            raise RuntimeError("boom")
    recorder.close()
    end = next(e for e in read_events(path) if e["type"] == "span_end")
    assert end["ok"] is False and end["error"] == "RuntimeError"


def test_bound_context_restores_previous_values():
    recorder = TelemetryRecorder()
    recorder.bind(scale="smoke")
    with recorder.bound(scale="full", extra=1):
        assert recorder.context == {"scale": "full", "extra": 1}
    assert recorder.context == {"scale": "smoke"}


def test_use_recorder_restores_global_seam():
    original = get_recorder()
    with use_recorder(TelemetryRecorder()) as recorder:
        assert get_recorder() is recorder
    assert get_recorder() is original


# --------------------------------------------------------------- runner wiring


def test_serial_run_emits_lifecycle_events(tmp_path):
    path = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=path)
    try:
        Runner(checkpoint_dir=tmp_path / "ckpt", n_chunks=3, recorder=recorder).run(
            make_task(), 300, 42, label="t1"
        )
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    events = read_events(path)
    types = [event["type"] for event in events]
    assert types[0] == "log_open"
    assert types.count("run_start") == 1 and types.count("run_end") == 1
    assert types.count("chunk_start") == 3 and types.count("chunk_end") == 3
    assert types.count("checkpoint") == 3
    run_end = next(e for e in events if e["type"] == "run_end")
    assert run_end["completed"] == 3 and not run_end["degraded"]
    assert all(e["label"] == "t1" for e in events if e["type"] == "chunk_end")
    metrics = recorder.metrics.snapshot()
    assert metrics["runner.chunks_completed"]["value"] == 3
    assert metrics["runner.checkpoints_written"]["value"] == 3
    assert metrics["engine.jumps_sampled"]["value"] > 0


def test_deadline_run_emits_deadline_event(tmp_path):
    path = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=path)
    try:
        outcome = Runner(n_chunks=3, max_seconds=0.0, recorder=recorder).run(
            make_task(), 300, 42
        )
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    assert outcome.degraded
    events = read_events(path)
    deadlines = [e for e in events if e["type"] == "deadline"]
    assert len(deadlines) == 1  # emitted once, not once per skipped chunk
    assert next(e for e in events if e["type"] == "run_end")["degraded"]


def test_kill_and_resume_log_reconstructs_timeline(tmp_path):
    """Acceptance: one log across kill + resume; report shows everything."""
    log = tmp_path / "events.jsonl"
    ckpt = tmp_path / "ckpt"
    injector = FaultInjector(
        "corrupt-checkpoint", chunk_index=1, arm_file=str(tmp_path / "armed")
    )
    arm(injector)

    recorder = telemetry.configure(log_path=log)
    try:
        with pytest.raises(FaultInjected):
            Runner(
                checkpoint_dir=ckpt,
                n_chunks=4,
                fault_injector=injector,
                recorder=recorder,
            ).run(make_task(), 400, 42, label="t1")
    finally:
        recorder.close()
        telemetry.set_recorder(None)

    # Second process appends to the *same* log (a new log_open header).
    recorder = telemetry.configure(log_path=log)
    try:
        outcome = Runner(checkpoint_dir=ckpt, n_chunks=4, resume=True, recorder=recorder).run(
            make_task(), 400, 42, label="t1"
        )
    finally:
        recorder.close()
        telemetry.set_recorder(None)

    reference = Runner(n_chunks=4).run(make_task(), 400, 42).payload
    np.testing.assert_array_equal(outcome.payload.times, reference.times)

    events = read_events(log)
    summary = summarize_events(events)
    assert len(summary["runs"]) == 2
    first, second = summary["runs"]
    assert first.status == "unfinished"  # killed before run_end
    assert second.status == "ok"
    assert second.resumed == outcome.resumed_chunks
    # The garbled chunk-1 checkpoint was quarantined, then recomputed.
    assert any(e["type"] == "quarantine" for e in events)
    assert any(e["type"] == "fault_injected" for e in events)
    resumed_indices = {e["chunk"] for e in summary["chunks"] if e["run"] == second.key}
    assert 1 in resumed_indices  # the quarantined chunk was recomputed
    # All four chunks appear exactly once across the two invocations.
    all_chunks = sorted(e["chunk"] for e in summary["chunks"])
    assert all_chunks == [0, 1, 2, 3]

    report = render_report(events)
    assert "runner invocations" in report
    assert "chunk timeline" in report
    assert "incidents" in report
    assert "quarantine" in report
    assert "unfinished" in report and "ok" in report


def test_pool_run_emits_chunk_events(tmp_path):
    path = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=path)
    try:
        Runner(n_chunks=4, workers=2, recorder=recorder).run(make_task(), 400, 42)
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    events = read_events(path)
    assert len([e for e in events if e["type"] == "chunk_end"]) == 4
    assert {e["chunk"] for e in events if e["type"] == "chunk_start"} == {0, 1, 2, 3}


# --------------------------------------------------------------- engine wiring


def test_engine_metrics_recorded_when_enabled():
    with use_recorder(TelemetryRecorder()) as recorder:
        walk_hitting_times(LAW, (5, 3), horizon=100, n=200, rng=np.random.default_rng(0))
        flight_hitting_times(LAW, (5, 3), horizon=50, n=200, rng=np.random.default_rng(1))
    snapshot = recorder.metrics.snapshot()
    assert snapshot["engine.walk.samples"]["value"] == 200
    assert snapshot["engine.flight.samples"]["value"] == 200
    assert snapshot["engine.steps_simulated"]["value"] > 0
    assert snapshot["engine.jumps_sampled"]["value"] > 0
    decades = snapshot["engine.jump_length_decades"]
    assert decades["total"] == snapshot["engine.jumps_sampled"]["value"]


def test_engine_records_nothing_when_disabled():
    recorder = get_recorder()
    assert recorder.enabled is False
    walk_hitting_times(LAW, (5, 3), horizon=100, n=200, rng=np.random.default_rng(0))
    assert recorder.metrics.snapshot() == {}


def test_telemetry_does_not_perturb_results():
    baseline = walk_hitting_times(LAW, (5, 3), horizon=150, n=300, rng=np.random.default_rng(7))
    with use_recorder(TelemetryRecorder()):
        traced = walk_hitting_times(LAW, (5, 3), horizon=150, n=300, rng=np.random.default_rng(7))
    np.testing.assert_array_equal(baseline.times, traced.times)


# ------------------------------------------------------------------ heartbeat


def test_progress_heartbeat_lines(tmp_path):
    import io

    stream = io.StringIO()
    recorder = TelemetryRecorder(progress=stream)
    recorder.event("run_start", n_total=100, n_chunks=4, label="t1")
    recorder.event("chunk_end", chunk=0, n=25, seconds=0.5, label="t1")
    recorder.event("chunk_start", chunk=1)  # not a progress type: silent
    recorder.event("run_end", completed=4, total=4, degraded=False, label="t1")
    lines = stream.getvalue().splitlines()
    assert len(lines) == 3
    assert "run start: 100 walks in 4 chunks" in lines[0]
    assert "chunk 0 done" in lines[1] and "[t1]" in lines[1]
    assert "run end: 4/4 chunks" in lines[2]
