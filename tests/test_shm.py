"""Shared-memory pool transport: registry, slabs, identity, cleanup.

The acceptance bar (ISSUE 10): pooled samples over the shm transport are
bit-identical to ``workers=0`` and to the pickle transport; a SIGKILLed
worker leaves no segment behind in ``/dev/shm``; non-slab payloads fall
back to pickle per chunk without failing the run; and the telemetry
stream shows ``pickle_seconds == 0`` with ``shm_bytes`` populated on the
shm path.
"""

import json
import os

import numpy as np
import pytest

from repro.distributions.cdf_table import get_table
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine import shm
from repro.engine.results import CENSORED, HittingTimeSample
from repro.runner import (
    ChaosFault,
    ChaosPlan,
    ForagingTask,
    HittingTimeTask,
    Runner,
    RetryPolicy,
)
from repro.telemetry.events import read_events
from repro.telemetry.recorder import NullRecorder, configure, set_recorder

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

LAW = ZetaJumpDistribution(2.5)
TARGET = (5, 3)
HORIZON = 150
N_WALKS = 400
N_CHUNKS = 4
SEED = 42


def make_task() -> HittingTimeTask:
    return HittingTimeTask(jumps=LAW, target=TARGET, horizon=HORIZON)


def run_with(workers: int, transport: str, **kw) -> HittingTimeSample:
    runner = Runner(workers=workers, n_chunks=N_CHUNKS,
                    pool_transport=transport, **kw)
    return runner.run(make_task(), N_WALKS, SEED).payload


# ----------------------------------------------------------------- unit layer


def test_slab_name_is_sanitized_and_unique_per_attempt():
    a1 = shm.slab_name("repro-1-abcd", "walk l=32", 3, 1)
    a2 = shm.slab_name("repro-1-abcd", "walk l=32", 3, 2)
    assert a1 != a2
    for name in (a1, a2):
        assert "/" not in name and " " not in name
        assert len(name) <= 64


def test_slab_roundtrip_is_exact():
    times = np.array([3, CENSORED, 17, 1, CENSORED], dtype=np.int64)
    sample = HittingTimeSample(times=times, horizon=20)
    ref = shm.encode_payload(sample, shm.slab_name("repro-t", "rt", 0, 1))
    assert ref is not None
    assert ref.kind == shm.KIND_HITTING
    decoded = shm.decode_slab(ref)
    np.testing.assert_array_equal(decoded.times, times)
    assert decoded.horizon == 20
    # decode unlinks: the segment must be gone afterwards.
    assert not shm.unlink_if_exists(ref.name)


def test_encode_payload_refuses_foreign_payloads():
    assert shm.encode_payload({"not": "a sample"}, "repro-t-x") is None


def test_decode_slab_validates_header():
    from multiprocessing import shared_memory

    name = shm.slab_name("repro-t", "bad", 0, 1)
    seg = shared_memory.SharedMemory(name=name, create=True, size=64)
    try:
        header = np.frombuffer(seg.buf, dtype=np.int64)
        header[:4] = [0xBAD, 1, 1, 10]
        del header  # release the exported pointer so close() can succeed
        with pytest.raises(ValueError):
            shm.decode_slab(shm.SlabRef(name=name, nbytes=64,
                                        kind=shm.KIND_HITTING))
    finally:
        seg.close()
        shm.unlink_if_exists(name)


def test_registry_publishes_tables_and_unlinks_on_close():
    registry = shm.SharedTableRegistry()
    registry.publish(2.5, 0.0, LAW.cap)
    descriptors = registry.descriptors()
    assert len(descriptors) == 1
    assert registry.nbytes > 0
    assert shm.list_segments(registry.prefix)
    registry.close()
    assert shm.list_segments(registry.prefix) == []
    registry.close()  # idempotent


def test_attach_tables_reconstructs_bitwise_equal_cdf():
    registry = shm.SharedTableRegistry()
    try:
        local = get_table(2.5, 0.0, LAW.cap).cdf.copy()
        registry.publish(2.5, 0.0, LAW.cap)
        before = shm.attached_table_count()
        assert shm.attach_tables(registry.descriptors()) == 1
        assert shm.attached_table_count() == before + 1
        # install_table routed the shared view into the process cache:
        # the next lookup must serve the bitwise-identical table.
        np.testing.assert_array_equal(get_table(2.5, 0.0, LAW.cap).cdf, local)
        # Re-attaching the same descriptors is an idempotent no-op.
        assert shm.attach_tables(registry.descriptors()) == 0
    finally:
        registry.close()


def test_publish_for_tasks_dedupes_by_table_key():
    registry = shm.SharedTableRegistry()
    try:
        registry.publish_for_tasks([make_task(), make_task()])
        assert len(registry.descriptors()) == 1
    finally:
        registry.close()


# ------------------------------------------------------------- identity layer


@pytest.fixture(scope="module")
def serial_reference():
    return Runner(n_chunks=N_CHUNKS).run(make_task(), N_WALKS, SEED).payload


def test_shm_transport_bit_identical_to_serial(serial_reference):
    pooled = run_with(2, "shm")
    np.testing.assert_array_equal(pooled.times, serial_reference.times)


def test_pickle_transport_bit_identical_to_serial(serial_reference):
    pooled = run_with(2, "pickle")
    np.testing.assert_array_equal(pooled.times, serial_reference.times)


def test_no_segments_leak_after_clean_run():
    runner = Runner(workers=2, n_chunks=N_CHUNKS, pool_transport="shm")
    runner.run(make_task(), N_WALKS, SEED)
    assert runner.shm_prefix is not None
    assert shm.list_segments(runner.shm_prefix) == []


# -------------------------------------------------------------- failure layer


def test_sigkilled_worker_leaves_no_segments(tmp_path, serial_reference):
    """The acceptance scenario: kill -9 mid-chunk, sweep /dev/shm after."""
    plan_dir = str(tmp_path / "arm")
    with ChaosPlan((ChaosFault("worker-kill", chunk=1),), plan_dir) as plan:
        runner = Runner(
            workers=2, n_chunks=N_CHUNKS, pool_transport="shm",
            retry_policy=RetryPolicy(max_attempts=4, backoff_base=0.01),
            fault_injector=plan,
        )
        outcome = runner.run(make_task(), N_WALKS, SEED)
    assert outcome.complete
    assert outcome.retries >= 1
    np.testing.assert_array_equal(outcome.payload.times, serial_reference.times)
    assert runner.shm_prefix is not None
    assert shm.list_segments(runner.shm_prefix) == []


def test_foraging_payload_falls_back_to_pickle(tmp_path):
    """Non-slab payload kinds ride the pipe; the run still completes."""
    task = ForagingTask.with_targets(
        LAW, targets=[(4, 2), (-3, 5), (9, -1)], horizon=HORIZON
    )
    serial = Runner(n_chunks=N_CHUNKS).run(task, N_WALKS, SEED).payload
    log = tmp_path / "events.jsonl"
    rec = configure(log_path=log)
    try:
        runner = Runner(workers=2, n_chunks=N_CHUNKS, pool_transport="shm",
                        recorder=rec)
        pooled = runner.run(task, N_WALKS, SEED).payload
    finally:
        set_recorder(NullRecorder())
    np.testing.assert_array_equal(
        pooled.discovery_times, serial.discovery_times
    )
    events = [e for e in read_events(log) if e.get("type") == "chunk_end"]
    assert events
    assert all(e.get("transport") == "pickle-fallback" for e in events)
    assert runner.shm_prefix is not None
    assert shm.list_segments(runner.shm_prefix) == []


# ------------------------------------------------------------ telemetry layer


def test_shm_chunk_events_report_zero_pickle_seconds(tmp_path):
    log = tmp_path / "events.jsonl"
    rec = configure(log_path=log)
    try:
        run_with(2, "shm", recorder=rec)
    finally:
        set_recorder(NullRecorder())
    events = [e for e in read_events(log) if e.get("type") == "chunk_end"]
    assert len(events) == N_CHUNKS
    for event in events:
        assert event["transport"] == "shm"
        assert event["pickle_seconds"] == 0.0
        assert event["shm_bytes"] > 0
        # The pipe carried a handle, not the payload: far smaller.
        assert event["ipc_bytes"] < event["shm_bytes"]


def test_explicit_pickle_transport_has_no_shm_fields(tmp_path):
    log = tmp_path / "events.jsonl"
    rec = configure(log_path=log)
    try:
        run_with(2, "pickle", recorder=rec)
    finally:
        set_recorder(NullRecorder())
    events = [e for e in read_events(log) if e.get("type") == "chunk_end"]
    assert len(events) == N_CHUNKS
    for event in events:
        assert event["transport"] == "pickle"
        assert "shm_bytes" not in event
