"""Tests for the vectorized hitting-time engines."""

import numpy as np
import pytest

from repro.distributions.unit import ConstantJumpDistribution, UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.samplers import HeterogeneousZetaSampler, HomogeneousSampler
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times


# -------------------------------------------------------------- walk engine


def test_walk_target_at_start(rng):
    sample = walk_hitting_times(
        ZetaJumpDistribution(2.5), (3, 3), horizon=100, n=50, rng=rng, start=(3, 3)
    )
    np.testing.assert_array_equal(sample.times, np.zeros(50))


def test_walk_times_within_horizon(rng):
    sample = walk_hitting_times(ZetaJumpDistribution(2.5), (4, 2), horizon=200, n=2_000, rng=rng)
    hits = sample.hit_times()
    assert hits.size > 0
    assert hits.min() >= 6  # at least l steps are needed (l = 6)
    assert hits.max() <= 200


def test_walk_lower_bounds_distance(rng):
    """No walk can hit a target at distance l before step l."""
    target = (7, 5)
    sample = walk_hitting_times(ZetaJumpDistribution(1.5), target, horizon=400, n=4_000, rng=rng)
    assert sample.hit_times().min() >= 12


def test_walk_horizon_zero(rng):
    sample = walk_hitting_times(ZetaJumpDistribution(2.5), (1, 0), horizon=0, n=10, rng=rng)
    assert sample.n_hits == 0


def test_walk_validation(rng):
    with pytest.raises(ValueError):
        walk_hitting_times(ZetaJumpDistribution(2.5), (1, 0), horizon=-1, n=10, rng=rng)
    with pytest.raises(ValueError):
        walk_hitting_times(ZetaJumpDistribution(2.5), (1, 0), horizon=10, n=0, rng=rng)


def test_walk_unit_law_is_srw(rng):
    """With unit jumps the engine is a lazy SRW: hitting a neighbor is
    frequent and fast."""
    sample = walk_hitting_times(UnitJumpDistribution(), (1, 0), horizon=50, n=4_000, rng=rng)
    assert sample.hit_fraction > 0.45
    # First possible hit is step 1, and it happens with probability 1/8.
    assert sample.hit_times().min() == 1
    p1 = float((sample.times == 1).mean())
    assert abs(p1 - 1.0 / 8.0) < 0.02


def test_walk_constant_jump_deterministic_time(rng):
    """Constant jump length 1: the walk is a non-lazy SRW; hits of (2,0)
    can only occur at even steps >= 2... actually any step >= 2 with the
    right parity.  We just check reachability and the parity invariant."""
    sample = walk_hitting_times(ConstantJumpDistribution(1), (2, 0), horizon=60, n=3_000, rng=rng)
    hits = sample.hit_times()
    assert hits.size > 0
    # Parity: position parity == step parity for a non-lazy unit walk.
    assert np.all(hits % 2 == 0)


def test_walk_intermittent_detection_is_weaker(rng):
    """Endpoint-only detection can only miss more, never find more."""
    law = ZetaJumpDistribution(2.2)
    seed = 99
    full = walk_hitting_times(
        law, (10, 6), horizon=600, n=6_000, rng=np.random.default_rng(seed), detect_during_jump=True
    )
    endpoint_only = walk_hitting_times(
        law, (10, 6), horizon=600, n=6_000, rng=np.random.default_rng(seed), detect_during_jump=False
    )
    assert endpoint_only.hit_fraction < full.hit_fraction


def test_walk_heterogeneous_sampler(rng):
    alphas = np.concatenate([np.full(2_000, 2.1), np.full(2_000, 3.8)])
    sampler = HeterogeneousZetaSampler(alphas)
    sample = walk_hitting_times(sampler, (16, 8), horizon=24 * 24, n=4_000, rng=rng)
    # Both exponent groups participate; ballistic-ish walks hit earlier on
    # average when they hit at all.
    assert sample.n_hits > 0


def test_walk_mid_jump_hit_times(rng):
    """A constant-6 jump law from the origin toward (3,0)... the target at
    distance 3 is hit mid-jump at exactly step 3 when the path crosses it."""
    sample = walk_hitting_times(ConstantJumpDistribution(6), (3, 0), horizon=6, n=20_000, rng=rng)
    hits = sample.hit_times()
    assert hits.size > 0
    assert np.all(hits == 3)


# ------------------------------------------------------------ flight engine


def test_flight_counts_jumps_not_steps(rng):
    sample = flight_hitting_times(ConstantJumpDistribution(5), (5, 0), horizon=1, n=20_000, rng=rng)
    hits = sample.hit_times()
    assert hits.size > 0
    assert np.all(hits == 1)
    # Probability of landing exactly on (5,0) in one jump is 1/(4*5).
    assert abs(sample.hit_fraction - 1.0 / 20.0) < 0.01


def test_flight_target_at_start(rng):
    sample = flight_hitting_times(ZetaJumpDistribution(2.5), (0, 0), horizon=10, n=7, rng=rng)
    np.testing.assert_array_equal(sample.times, np.zeros(7))


def test_flight_cannot_hit_mid_jump(rng):
    """A flight with constant jump 2 can never land on an odd-distance
    node at odd time... more simply: it can never land on (1, 0)."""
    sample = flight_hitting_times(ConstantJumpDistribution(2), (1, 0), horizon=50, n=2_000, rng=rng)
    assert sample.n_hits == 0


def test_flight_validation(rng):
    with pytest.raises(ValueError):
        flight_hitting_times(ZetaJumpDistribution(2.5), (1, 0), horizon=-2, n=5, rng=rng)


def test_homogeneous_sampler_wrapper(rng):
    sampler = HomogeneousSampler(ConstantJumpDistribution(3))
    out = sampler.sample(rng, np.arange(10))
    np.testing.assert_array_equal(out, np.full(10, 3))


def test_heterogeneous_sampler_validation():
    with pytest.raises(ValueError):
        HeterogeneousZetaSampler(np.array([[2.5]]))
    with pytest.raises(ValueError):
        HeterogeneousZetaSampler(np.array([0.9]))
    with pytest.raises(ValueError):
        HeterogeneousZetaSampler(np.array([2.5]), lazy_probability=1.5)


def test_heterogeneous_sampler_lazy_mass(rng):
    sampler = HeterogeneousZetaSampler(np.full(20_000, 2.5), lazy_probability=0.5)
    out = sampler.sample(rng, np.arange(20_000))
    assert abs(float((out == 0).mean()) - 0.5) < 0.02
