"""Tests for the static HTML run-registry dashboard.

The contract under test: one self-contained file (inline CSS + SVG,
zero JavaScript, no external assets), a valid empty state, estimate
trajectories with CI whiskers per grid-point key, phase bars, the
incident ledger — and the acceptance bar: rendered from >= 3 registered
smoke runs via the CLI, the page shows estimate and phase trends.
"""

import pytest

from repro.cli import EXIT_OK, main
from repro.reporting.dashboard import (
    estimate_trajectory_svg,
    render_dashboard,
    trend_svg,
    write_dashboard,
)
from repro.telemetry.registry import RunRegistry, build_run_record


def _record(index, p=0.05, phases=None, incidents=None, outcome="ok"):
    return build_run_record(
        command="sweep",
        label="dash",
        run_id=f"20260101T00000{index}Z-{index:06d}",
        created_at=f"2026-01-01T00:00:0{index}Z",
        seed=index,
        scale="smoke",
        estimates=[
            {
                "key": "alpha=2.2 l=24",
                "law": "alpha=2.2",
                "params": {"alpha": 2.2, "l": 24},
                "trials": 2000,
                "successes": int(2000 * p),
                "p": p,
                "low": p - 0.01,
                "high": p + 0.01,
                "half_width": 0.01,
                "status": "converged" if index % 2 else "complete",
            }
        ],
        walltime_seconds=1.0 + 0.1 * index,
        outcome=outcome,
        exit_code=0 if outcome == "ok" else 3,
    )


def _patched(record, **overrides):
    data = record.to_dict()
    data.update(overrides)
    from repro.telemetry.registry import RunRecord

    return RunRecord.from_dict(data)


def _three_records():
    records = [_record(i, p=0.05 + 0.005 * i) for i in range(3)]
    records[1] = _patched(
        records[1], phases={"rng": 0.4, "cdf_lookup": 0.2, "target_check": 0.1}
    )
    records[2] = _patched(
        records[2],
        incidents={"retries": 2, "incidents": 1},
        outcome="degraded",
        notes=["deadline hit at chunk 7"],
    )
    return records


def test_dashboard_is_single_file_with_inline_svg_and_no_scripts():
    html = render_dashboard(_three_records(), title="T & T")
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html
    # No external assets: the only URL is the SVG namespace declaration.
    assert "<link" not in html and "<img" not in html
    for url in ("http://", "https://"):
        assert html.count(url) == html.count(f'xmlns="{url}www.w3.org')
    assert "<style>" in html and "<svg" in html
    assert "T &amp; T" in html  # titles are escaped


def test_dashboard_sections_cover_the_registered_history():
    html = render_dashboard(_three_records())
    assert "Overview" in html
    assert "Estimate trajectories" in html
    assert "alpha=2.2 l=24" in html
    assert "Walltime &amp; convergence trends" in html
    assert "Phase seconds" in html
    for phase in ("rng", "cdf_lookup", "target_check"):
        assert phase in html
    assert "Incident &amp; quarantine ledger" in html
    assert "retries=2" in html
    assert "deadline hit at chunk 7" in html
    for index in range(3):  # every run appears in the overview
        assert f"20260101T00000{index}Z" in html


def test_empty_registry_renders_a_valid_empty_state():
    html = render_dashboard([])
    assert html.startswith("<!DOCTYPE html>")
    assert html.rstrip().endswith("</html>")
    assert "The registry is empty" in html
    assert "<script" not in html


def test_trajectory_svg_draws_whiskers_and_tolerates_gaps():
    points = [
        {"run_id": "r-1", "p": 0.05, "low": 0.04, "high": 0.06},
        {"run_id": "r-2", "p": None, "low": None, "high": None},  # gap
        {"run_id": "r-3", "p": 0.07, "low": 0.06, "high": 0.08},
    ]
    svg = estimate_trajectory_svg(points)
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "<circle" in svg  # point markers
    assert "<line" in svg  # CI whiskers / frame
    assert "<title>" in svg  # hover tooltips


def test_trend_svg_handles_all_none_series():
    svg = trend_svg([None, None], ["a", "b"])
    assert svg.startswith("<svg") and svg.endswith("</svg>")


def test_write_dashboard_is_atomic_and_returns_the_path(tmp_path):
    target = tmp_path / "out" / "dashboard.html"
    target.parent.mkdir()
    path = write_dashboard(_three_records(), target)
    assert path == target
    assert target.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
    assert not list(target.parent.glob("*.tmp*"))  # no temp litter


def test_dashboard_cli_renders_three_registered_smoke_runs(tmp_path, capsys):
    """Acceptance: >= 3 registered smoke runs -> estimate + phase trends."""
    registry_dir = str(tmp_path / "registry")
    for seed in range(3):
        code = main(
            [
                "sweep",
                "--alpha", "2.2",
                "--l", "8",
                "--n-walks", "200",
                "--seed", str(seed),
                "--registry-dir", registry_dir,
                "--log-json", str(tmp_path / f"events-{seed}.jsonl"),
            ]
        )
        assert code == EXIT_OK
    capsys.readouterr()
    output = tmp_path / "dashboard.html"
    assert main(["dashboard", str(output), "--registry-dir", registry_dir]) == EXIT_OK
    assert "3 run(s)" in capsys.readouterr().out

    html = output.read_text(encoding="utf-8")
    assert "<script" not in html
    assert html.count("<svg") >= 3  # trajectory + walltime + convergence
    assert "alpha=2.2 l=8" in html  # the grid point's trajectory heading
    records = RunRegistry(registry_dir).records(strict=True)
    assert len(records) == 3
    for record in records:  # every registered run is on the page
        assert record.run_id in html


def test_dashboard_cli_on_empty_registry_still_writes_a_page(tmp_path, capsys):
    output = tmp_path / "dashboard.html"
    code = main(
        ["dashboard", str(output), "--registry-dir", str(tmp_path / "none")]
    )
    captured = capsys.readouterr()
    assert code == EXIT_OK
    assert "0 run(s)" in captured.out
    assert "empty" in captured.err
    assert output.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
