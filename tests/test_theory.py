"""Tests for the executable theorem predictions and horizon policies."""

import math

import pytest

from repro.theory.horizons import characteristic_horizon, early_time_grid, parallel_horizon
from repro.theory.predictions import (
    cor_1_4_probability,
    cor_4_2b_slowdown,
    cor_4_2c_hit_probability,
    cor_5_3_required_k,
    msd_exponent,
    predicted_early_time_slope,
    predicted_hit_probability_slope,
    thm_1_1a_probability,
    thm_1_1a_time,
    thm_1_1b_probability,
    thm_1_1c_probability,
    thm_1_2a_probability,
    thm_1_2a_time,
    thm_1_2b_probability,
    thm_1_3a_probability,
    thm_1_3b_probability,
    thm_1_5_parallel_time,
    thm_1_6_parallel_time,
)


def test_probabilities_in_unit_interval():
    for l in (10, 100, 10_000):
        assert 0 <= thm_1_1a_probability(2.5, l) <= 1
        assert 0 <= thm_1_1c_probability(2.5, l) <= 1
        assert 0 <= thm_1_2a_probability(l) <= 1
        assert 0 <= thm_1_3a_probability(1.5, l) <= 1
        assert 0 <= thm_1_3b_probability(2.0, l) <= 1
        assert 0 <= cor_1_4_probability(2.5, l, 64) <= 1


def test_thm_1_1a_scaling():
    """The lower bound decays like l^-(3-alpha)."""
    ratio = thm_1_1a_probability(2.5, 10_000) / thm_1_1a_probability(2.5, 100)
    # Pure polynomial part: (100)^-0.5 = 0.1; polylogs soften it.
    assert 0.03 < ratio / 0.1 < 3.0


def test_thm_1_1a_time_scale():
    assert thm_1_1a_time(2.5, 100) == pytest.approx(
        min(math.log(100), 2.0) * 100**1.5
    )


def test_thm_1_1b_quadratic_in_t():
    p1 = thm_1_1b_probability(2.5, 1000, 1000)
    p2 = thm_1_1b_probability(2.5, 1000, 2000)
    assert p2 / p1 == pytest.approx(4.0)


def test_thm_1_1_regime_validation():
    with pytest.raises(ValueError):
        thm_1_1a_probability(3.5, 100)
    with pytest.raises(ValueError):
        thm_1_1b_probability(2.0, 100, 100)
    with pytest.raises(ValueError):
        thm_1_1c_probability(1.5, 100)


def test_thm_1_2_values():
    l = 100
    assert thm_1_2a_time(l) == pytest.approx(l * l * math.log(l) ** 2)
    assert thm_1_2b_probability(l, l) == pytest.approx(math.log(l) / l**2)


def test_thm_1_3_regime_validation():
    with pytest.raises(ValueError):
        thm_1_3a_probability(2.5, 100)
    with pytest.raises(ValueError):
        thm_1_3b_probability(3.0, 100)


def test_cor_1_4_improves_with_k():
    l = 1000
    assert cor_1_4_probability(2.5, l, 10_000) > cor_1_4_probability(2.5, l, 10)


def test_parallel_time_bounds_decrease_in_k():
    l = 10_000
    assert thm_1_5_parallel_time(100, l) < thm_1_5_parallel_time(10, l)
    assert thm_1_6_parallel_time(100, l) < thm_1_6_parallel_time(10, l)
    # Theorem 1.6 pays an extra log factor over Theorem 1.5.
    assert thm_1_6_parallel_time(10, l) > thm_1_5_parallel_time(10, l)


def test_cor_4_2_windows():
    k, l = 100, 10_000
    alpha_star = 3.0 - math.log(k) / math.log(l)
    assert cor_4_2b_slowdown(alpha_star + 0.4, k, l) > 0
    with pytest.raises(ValueError):
        cor_4_2b_slowdown(alpha_star - 0.1, k, l)
    assert 0 <= cor_4_2c_hit_probability(alpha_star - 0.3, k, l) <= 1
    with pytest.raises(ValueError):
        cor_4_2c_hit_probability(alpha_star + 0.1, k, l)


def test_cor_4_2b_grows_with_overshoot():
    k, l = 100, 10_000
    alpha_star = 3.0 - math.log(k) / math.log(l)
    assert cor_4_2b_slowdown(alpha_star + 0.6, k, l) > cor_4_2b_slowdown(
        alpha_star + 0.2, k, l
    )


def test_cor_5_3_required_k_superlinear():
    assert cor_5_3_required_k(1000) > 1000


def test_predicted_slopes():
    assert predicted_hit_probability_slope(2.5) == pytest.approx(-0.5)
    assert predicted_hit_probability_slope(1.5) == -1.0
    assert predicted_hit_probability_slope(3.5) == 0.0
    assert predicted_early_time_slope() == 2.0


def test_msd_exponents():
    assert msd_exponent(1.5) == 1.0
    assert msd_exponent(2.5) == pytest.approx(1.0 / 1.5)
    assert msd_exponent(3.0) == 0.5
    assert msd_exponent(5.0) == 0.5


# ----------------------------------------------------------------- horizons


def test_characteristic_horizon_regimes():
    l = 64
    assert characteristic_horizon(1.5, l) == pytest.approx(4 * l, abs=2)
    assert characteristic_horizon(3.5, l) >= l * l
    mid = characteristic_horizon(2.5, l)
    assert 4 * l < mid < l * l * math.log(l) ** 2


def test_characteristic_horizon_validation():
    with pytest.raises(ValueError):
        characteristic_horizon(2.5, 1)


def test_early_time_grid_window():
    grid = early_time_grid(2.5, 64)
    assert grid[0] >= 64
    assert grid[-1] <= characteristic_horizon(2.5, 64)
    assert grid == sorted(grid)


def test_parallel_horizon_scales():
    assert parallel_horizon(10, 100) > parallel_horizon(1000, 100)
    with pytest.raises(ValueError):
        parallel_horizon(0, 100)
