"""Tests for the ball-target hitting engine."""

import numpy as np
import pytest

from repro.distributions.unit import ConstantJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.ball_targets import ball_hitting_times
from repro.engine.vectorized import walk_hitting_times


def test_start_inside_ball(rng):
    sample = ball_hitting_times(
        ZetaJumpDistribution(2.5), (2, 1), radius=3, horizon=50, n=7, rng=rng
    )
    np.testing.assert_array_equal(sample.times, np.zeros(7))


def test_validation(rng):
    law = ZetaJumpDistribution(2.5)
    with pytest.raises(ValueError):
        ball_hitting_times(law, (5, 0), radius=-1, horizon=10, n=5, rng=rng)
    with pytest.raises(ValueError):
        ball_hitting_times(law, (5, 0), radius=1, horizon=-1, n=5, rng=rng)
    with pytest.raises(ValueError):
        ball_hitting_times(law, (5, 0), radius=1, horizon=10, n=0, rng=rng)


def test_radius_zero_matches_point_engine(rng):
    """r = 0 must reproduce the point-target law (statistically)."""
    law = ZetaJumpDistribution(2.4)
    target, horizon, n = (5, 3), 150, 30_000
    ball = ball_hitting_times(law, target, radius=0, horizon=horizon, n=n, rng=rng)
    point = walk_hitting_times(law, target, horizon=horizon, n=n, rng=rng)
    gap = 4.0 * (point.hit_fraction * (1 - point.hit_fraction) * 2 / n) ** 0.5 + 1e-3
    assert abs(ball.hit_fraction - point.hit_fraction) < gap
    if ball.n_hits > 100 and point.n_hits > 100:
        assert abs(
            np.median(ball.hit_times()) - np.median(point.hit_times())
        ) <= max(4.0, 0.25 * np.median(point.hit_times()))


def test_hit_time_lower_bound_is_distance_to_boundary(rng):
    """A walk needs at least l - r steps to touch B_r at center distance l."""
    sample = ball_hitting_times(
        ZetaJumpDistribution(1.8), (10, 6), radius=3, horizon=200, n=4_000, rng=rng
    )
    assert sample.hit_times().min() >= 16 - 3


def test_larger_balls_hit_more(rng):
    law = ZetaJumpDistribution(2.5)
    target, horizon, n = (12, 8), 300, 8_000
    small = ball_hitting_times(law, target, radius=0, horizon=horizon, n=n, rng=rng).hit_fraction
    large = ball_hitting_times(law, target, radius=4, horizon=horizon, n=n, rng=rng).hit_fraction
    assert large > small


def test_midjump_dominates_endpoint(rng):
    law = ZetaJumpDistribution(2.1)
    target, horizon, n = (14, 6), 200, 12_000
    seed_rng = np.random.default_rng(11)
    mid = ball_hitting_times(
        law, target, radius=2, horizon=horizon, n=n, rng=np.random.default_rng(1), detect_during_jump=True
    ).hit_fraction
    end = ball_hitting_times(
        law, target, radius=2, horizon=horizon, n=n, rng=np.random.default_rng(1), detect_during_jump=False
    ).hit_fraction
    assert mid > end
    del seed_rng


def test_constant_jump_crossing_geometry(rng):
    """A single length-20 jump from the origin crosses B_2((10, 0)) iff its
    direct path passes within distance 2 of (10, 0); hits occur at steps
    8..12 only."""
    sample = ball_hitting_times(
        ConstantJumpDistribution(20), (10, 0), radius=2, horizon=20, n=30_000, rng=rng
    )
    hits = sample.hit_times()
    assert hits.size > 0
    assert hits.min() >= 8
    assert hits.max() <= 12


def test_first_entry_step_recorded(rng):
    """Entering the ball records the FIRST inside ring: with a straight
    horizontal jump through the center, entry is at l - r exactly."""
    # Constant jump 30 from origin; ball B_1((15, 0)).  Conditioned on the
    # path passing through (14..16, 0)-ish, the first entry is at ring 14.
    sample = ball_hitting_times(
        ConstantJumpDistribution(30), (15, 0), radius=1, horizon=30, n=50_000, rng=rng
    )
    hits = sample.hit_times()
    assert hits.size > 0
    assert hits.min() == 14


def test_ball_engine_matches_object_level(rng):
    """Cross-validate the ball engine against step-by-step Levy walks."""
    from repro.rng import spawn
    from repro.walks import LevyWalk

    alpha = 2.3
    center, radius, horizon = (6, 4), 2, 80
    fast = ball_hitting_times(
        ZetaJumpDistribution(alpha), center, radius=radius, horizon=horizon, n=30_000, rng=rng
    )
    hits = 0
    n_ref = 2_500
    for child in spawn(rng, n_ref):
        walk = LevyWalk(alpha, rng=child)
        found = False
        for _ in range(horizon):
            x, y = walk.advance()
            if abs(x - center[0]) + abs(y - center[1]) <= radius:
                found = True
                break
        hits += found
    p_ref = hits / n_ref
    se = (p_ref * (1 - p_ref) / n_ref + fast.hit_fraction * (1 - fast.hit_fraction) / 30_000) ** 0.5
    assert abs(fast.hit_fraction - p_ref) < 4.5 * se + 1e-3
