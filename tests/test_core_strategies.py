"""Tests for exponent-selection strategies."""

import numpy as np
import pytest

from repro.core.exponents import optimal_exponent
from repro.core.strategies import (
    FixedExponentStrategy,
    OracleExponentStrategy,
    UniformRandomExponentStrategy,
    cauchy_strategy,
    diffusive_strategy,
)


def test_fixed_strategy(rng):
    strategy = FixedExponentStrategy(2.5)
    out = strategy.sample_exponents(7, rng)
    np.testing.assert_array_equal(out, np.full(7, 2.5))
    assert "2.5" in strategy.name


def test_fixed_strategy_validation():
    with pytest.raises(ValueError):
        FixedExponentStrategy(1.0)


def test_cauchy_and_diffusive():
    assert cauchy_strategy().alpha == 2.0
    assert diffusive_strategy().alpha == 3.0
    assert "cauchy" in cauchy_strategy().name


def test_uniform_random_strategy_range(rng):
    strategy = UniformRandomExponentStrategy()
    out = strategy.sample_exponents(10_000, rng)
    assert out.shape == (10_000,)
    assert out.min() > 2.0 and out.max() < 3.0
    # Roughly uniform: mean ~ 2.5, quartiles ~ 2.25 / 2.75.
    assert abs(out.mean() - 2.5) < 0.02
    assert abs(np.quantile(out, 0.25) - 2.25) < 0.02


def test_uniform_random_strategy_custom_range(rng):
    strategy = UniformRandomExponentStrategy(2.2, 2.4)
    out = strategy.sample_exponents(1_000, rng)
    assert out.min() > 2.2 and out.max() < 2.4


def test_uniform_random_strategy_validation():
    with pytest.raises(ValueError):
        UniformRandomExponentStrategy(3.0, 2.0)
    with pytest.raises(ValueError):
        UniformRandomExponentStrategy(0.5, 2.0)


def test_oracle_strategy_tracks_alpha_star():
    l = 4096  # large enough that the shift does not clamp
    oracle = OracleExponentStrategy(l)
    for k in (4, 64, 1024):
        exponent = oracle.exponent_for(k)
        assert exponent > optimal_exponent(k, l)
        assert 2.0 < exponent < 3.0
    # More walks -> smaller exponent.
    assert oracle.exponent_for(1024) < oracle.exponent_for(4)


def test_oracle_strategy_samples_constant(rng):
    oracle = OracleExponentStrategy(256)
    out = oracle.sample_exponents(5, rng)
    assert np.all(out == out[0])


def test_oracle_literal_theorem_shift():
    lenient = OracleExponentStrategy(256, shift_constant=1.0)
    literal = OracleExponentStrategy(256, shift_constant=5.0)
    assert literal.exponent_for(16) >= lenient.exponent_for(16)


def test_oracle_validation():
    with pytest.raises(ValueError):
        OracleExponentStrategy(1)


def test_describe():
    assert FixedExponentStrategy(2.5).describe() == "fixed(alpha=2.5)"
