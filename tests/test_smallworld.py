"""Tests for the Kleinberg small-world module (extension)."""

import numpy as np
import pytest

from repro.smallworld.kleinberg import KleinbergGrid, greedy_routing_trial


def test_construction_validation():
    with pytest.raises(ValueError):
        KleinbergGrid(2, 1.0)
    with pytest.raises(ValueError):
        KleinbergGrid(16, 0.0)


def test_torus_distance():
    grid = KleinbergGrid(10, 1.0)
    assert grid.torus_distance((0, 0), (1, 0)) == 1
    assert grid.torus_distance((0, 0), (9, 0)) == 1  # wraps
    assert grid.torus_distance((0, 0), (5, 5)) == 10
    assert grid.torus_distance((2, 3), (2, 3)) == 0


def test_wrap():
    grid = KleinbergGrid(8, 1.0)
    assert grid.wrap((9, -1)) == (1, 7)


def test_grid_neighbors():
    grid = KleinbergGrid(6, 1.0)
    neighbors = grid.grid_neighbors((0, 0))
    assert set(neighbors) == {(1, 0), (5, 0), (0, 1), (0, 5)}


def test_long_range_contact_distance_law(rng):
    grid = KleinbergGrid(32, 1.0)
    node = (3, 4)
    distances = []
    for _ in range(4_000):
        contact = grid.sample_long_range_contact(node, rng)
        d = grid.torus_distance(node, contact)
        assert 1 <= d  # never a self-link
        distances.append(d)
    # P(d) ∝ 1/d on [1, 16]: P(d=1)/P(d=8) = 8.
    counts = np.bincount(distances, minlength=17)
    assert counts[1] > counts[8] > counts[16] * 0  # ordering of masses
    ratio = counts[1] / max(counts[8], 1)
    assert 4.0 < ratio < 16.0


def test_greedy_route_terminates_and_counts(rng):
    grid = KleinbergGrid(32, 1.0)
    steps = grid.greedy_route_length((0, 0), (5, 0), rng)
    # Greedy with grid edges alone needs exactly 5; shortcuts may help
    # (or be ignored), never hurt.
    assert 1 <= steps <= 5


def test_greedy_route_trivial(rng):
    grid = KleinbergGrid(16, 1.0)
    assert grid.greedy_route_length((3, 3), (3, 3), rng) == 0


def test_greedy_route_progress_guard(rng):
    grid = KleinbergGrid(16, 1.0)
    with pytest.raises(RuntimeError):
        grid.greedy_route_length((0, 0), (8, 8), rng, max_steps=1)


def test_routing_trial_shape(rng):
    steps = greedy_routing_trial(32, 1.0, 20, rng)
    assert steps.shape == (20,)
    assert np.all(steps >= 0)
    assert np.all(steps <= 32 * 32)


def test_steep_exponent_is_slower(rng):
    """alpha=2 (too-short links) routes slower than alpha=1 at n=256."""
    fast = float(np.median(greedy_routing_trial(256, 1.0, 60, rng)))
    slow = float(np.median(greedy_routing_trial(256, 2.0, 60, rng)))
    assert slow > 1.5 * fast
