"""Tests for randomness plumbing."""

import numpy as np
import pytest

from repro.rng import as_generator, random_seed, spawn


def test_as_generator_from_int_is_deterministic():
    a = as_generator(42).random(5)
    b = as_generator(42).random(5)
    np.testing.assert_array_equal(a, b)


def test_as_generator_passthrough():
    rng = np.random.default_rng(0)
    assert as_generator(rng) is rng


def test_as_generator_none_gives_fresh():
    a = as_generator(None)
    b = as_generator(None)
    assert isinstance(a, np.random.Generator)
    # Overwhelmingly unlikely to coincide.
    assert not np.array_equal(a.random(4), b.random(4))


def test_spawn_independence():
    rng = as_generator(7)
    children = spawn(rng, 3)
    assert len(children) == 3
    streams = [child.random(8).tolist() for child in children]
    assert streams[0] != streams[1] != streams[2]


def test_spawn_deterministic_given_seed():
    a = [g.random(3).tolist() for g in spawn(as_generator(9), 2)]
    b = [g.random(3).tolist() for g in spawn(as_generator(9), 2)]
    assert a == b


def test_spawn_validation():
    with pytest.raises(ValueError):
        spawn(as_generator(0), -1)
    assert spawn(as_generator(0), 0) == []


def test_random_seed_range():
    seed = random_seed(as_generator(3))
    assert 0 <= seed < 2**63
