"""Tests for the 1D line module (walks and the [38] foraging model)."""

import numpy as np
import pytest

from repro.distributions.unit import ConstantJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.results import CENSORED
from repro.line.foraging_1d import line_encounter_rate
from repro.line.walk_1d import line_walk_hitting_times


# ------------------------------------------------------------- 1D hitting


def test_target_at_start(rng):
    sample = line_walk_hitting_times(ZetaJumpDistribution(2.5), 0, 50, 9, rng)
    np.testing.assert_array_equal(sample.times, np.zeros(9))


def test_validation(rng):
    law = ZetaJumpDistribution(2.5)
    with pytest.raises(ValueError):
        line_walk_hitting_times(law, 5, -1, 3, rng)
    with pytest.raises(ValueError):
        line_walk_hitting_times(law, 5, 10, 0, rng)


def test_hit_time_at_least_distance(rng):
    sample = line_walk_hitting_times(ZetaJumpDistribution(2.0), 17, 300, 4_000, rng)
    hits = sample.hit_times()
    assert hits.size > 0
    assert hits.min() >= 17


def test_negative_targets_symmetric(rng):
    law = ZetaJumpDistribution(2.2)
    a = line_walk_hitting_times(law, 12, 200, 20_000, rng).hit_fraction
    b = line_walk_hitting_times(law, -12, 200, 20_000, rng).hit_fraction
    assert abs(a - b) < 0.02


def test_constant_unit_jump_is_srw_on_line(rng):
    """Non-lazy unit jumps on Z: P(hit +1 at step 1) = 1/2."""
    sample = line_walk_hitting_times(ConstantJumpDistribution(1), 1, 1, 20_000, rng)
    assert abs(sample.hit_fraction - 0.5) < 0.02


def test_mid_flight_detection(rng):
    """A constant length-10 flight from 0 hits target 5 at step 5 iff it
    goes right: probability exactly 1/2, time exactly 5."""
    sample = line_walk_hitting_times(ConstantJumpDistribution(10), 5, 10, 20_000, rng)
    assert abs(sample.hit_fraction - 0.5) < 0.02
    assert np.all(sample.hit_times() == 5)


def test_line_walk_beats_2d_walk(rng):
    """Sanity: hitting a target at distance l is far easier on Z than on
    Z^2 (no angular dilution)."""
    from repro.engine.vectorized import walk_hitting_times

    law = ZetaJumpDistribution(2.0)
    p_line = line_walk_hitting_times(law, 32, 128, 10_000, rng).hit_fraction
    p_plane = walk_hitting_times(law, (32, 0), horizon=128, n=10_000, rng=rng).hit_fraction
    assert p_line > 5 * p_plane


# ------------------------------------------------------------ 1D foraging


def test_encounter_rate_validation(rng):
    law = ZetaJumpDistribution(2.0)
    with pytest.raises(ValueError):
        line_encounter_rate(law, 1, 100, 10, rng)
    with pytest.raises(ValueError):
        line_encounter_rate(law, 10, 0, 10, rng)
    with pytest.raises(ValueError):
        line_encounter_rate(law, 10, 100, 0, rng)


def test_encounter_statistics_consistency(rng):
    stats = line_encounter_rate(ZetaJumpDistribution(2.0), 20, 5_000, 50, rng)
    assert stats.encounters_per_walker.shape == (50,)
    assert np.all(stats.steps_per_walker >= 5_000)
    assert 0 <= stats.efficiency <= 1.0


def test_denser_targets_higher_rate(rng):
    law = ZetaJumpDistribution(2.0)
    dense = line_encounter_rate(law, 10, 20_000, 100, rng).efficiency
    sparse = line_encounter_rate(law, 200, 20_000, 100, rng).efficiency
    assert dense > 3 * sparse


def test_ballistic_rate_exact_scale(rng):
    """A near-deterministic long-jump walker crosses targets every L steps
    of travel, so eta ~ 1/L."""
    stats = line_encounter_rate(ConstantJumpDistribution(1_000), 50, 30_000, 100, rng)
    assert stats.efficiency == pytest.approx(1.0 / 50.0, rel=0.1)


def test_cauchy_beats_diffusive_when_sparse(rng):
    sparse = 500
    cauchy = line_encounter_rate(
        ZetaJumpDistribution(2.0), sparse, 30_000, 150, rng
    ).efficiency
    diffusive = line_encounter_rate(
        ZetaJumpDistribution(3.5), sparse, 30_000, 150, rng
    ).efficiency
    assert cauchy > 1.3 * diffusive


def test_no_censored_sentinel_in_hitting_sample(rng):
    sample = line_walk_hitting_times(ZetaJumpDistribution(2.5), 9, 40, 500, rng)
    assert np.all((sample.times == CENSORED) | (sample.times >= 9))
