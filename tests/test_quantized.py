"""Tests for the quantized (dyadic-level) jump law."""

import numpy as np
import pytest
from scipy import special

from repro.distributions.quantized import QuantizedZetaJumpDistribution


def test_validation():
    with pytest.raises(ValueError):
        QuantizedZetaJumpDistribution(1.0, 3)
    with pytest.raises(ValueError):
        QuantizedZetaJumpDistribution(2.5, 0)
    with pytest.raises(ValueError):
        QuantizedZetaJumpDistribution(2.5, 3, lazy_probability=1.0)


def test_one_level_is_unit_jump(rng):
    law = QuantizedZetaJumpDistribution(2.5, 1)
    samples = law.sample(rng, 5_000)
    assert set(np.unique(samples)) <= {0, 1}
    assert float(law.pmf(1)) == pytest.approx(0.5)
    assert law.support_max == 1


def test_pmf_support_is_dyadic():
    law = QuantizedZetaJumpDistribution(2.5, 4)
    np.testing.assert_array_equal(law.lengths, [1, 2, 4, 8])
    assert float(law.pmf(3)) == 0.0
    assert float(law.pmf(8)) > 0.0
    assert float(law.pmf(16)) == 0.0
    grid = np.arange(0, 20)
    assert float(np.sum(law.pmf(grid))) == pytest.approx(1.0)


def test_band_masses_match_zeta():
    alpha = 2.5
    law = QuantizedZetaJumpDistribution(alpha, 3)
    z1 = float(special.zeta(alpha, 1))
    # Level 0 carries P(1 <= d < 2), level 1 P(2 <= d < 4), level 2 the tail.
    expected0 = (z1 - float(special.zeta(alpha, 2))) / z1
    expected2 = float(special.zeta(alpha, 4)) / z1
    assert float(law.pmf(1)) == pytest.approx(0.5 * expected0)
    assert float(law.pmf(4)) == pytest.approx(0.5 * expected2)


def test_tail_consistency():
    law = QuantizedZetaJumpDistribution(2.2, 4)
    for i in (0, 1, 2, 3, 4, 8, 9):
        lhs = float(law.tail(i) - law.tail(i + 1))
        assert lhs == pytest.approx(float(law.pmf(i)), abs=1e-12)
    assert float(law.tail(0)) == pytest.approx(1.0)


def test_moments_finite_and_ordered():
    small = QuantizedZetaJumpDistribution(2.5, 2)
    large = QuantizedZetaJumpDistribution(2.5, 8)
    assert 0 < small.mean < large.mean
    assert small.second_moment < large.second_moment
    assert np.isfinite(large.variance)


def test_sampling_matches_pmf(rng):
    law = QuantizedZetaJumpDistribution(2.5, 3)
    n = 60_000
    samples = law.sample(rng, n)
    for value in (0, 1, 2, 4):
        expected = float(law.pmf(value)) * n
        observed = int(np.count_nonzero(samples == value))
        assert abs(observed - expected) < 5.0 * (expected**0.5 + 1)


def test_mean_converges_to_true_law():
    """As levels grow, the quantized mean approaches the true mean within
    the dyadic rounding factor (lengths are rounded DOWN to 2^j, so the
    quantized mean is within [mean/2, mean])."""
    from repro.distributions.zeta import ZetaJumpDistribution

    truth = ZetaJumpDistribution(2.5).mean
    approx = QuantizedZetaJumpDistribution(2.5, 24).mean
    assert truth / 2.2 <= approx <= truth * 1.05


def test_quantized_plugs_into_walk_engine(rng):
    """The quantized law works with both the object walk and the engine."""
    from repro.engine.vectorized import walk_hitting_times
    from repro.walks import LevyWalk

    law = QuantizedZetaJumpDistribution(2.5, 6)
    sample = walk_hitting_times(law, (10, 5), horizon=400, n=3_000, rng=rng)
    assert sample.n_hits > 0
    assert sample.hit_times().min() >= 15
    walk = LevyWalk(law, rng=rng)
    trajectory = walk.run(50)
    steps = [
        abs(a[0] - b[0]) + abs(a[1] - b[1])
        for a, b in zip(trajectory, trajectory[1:])
    ]
    assert max(steps) <= 1
