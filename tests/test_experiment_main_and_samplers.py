"""Edge-case tests: CLI wrapper exit codes, sampler index mapping."""

import numpy as np

from repro.engine.samplers import HeterogeneousZetaSampler
from repro.experiments.common import Check, ExperimentResult, experiment_main


def _fake_run(passed):
    def run(scale="small", seed=0):
        """Fake experiment."""
        return ExperimentResult(
            experiment_id="FAKE",
            title="fake",
            scale=scale,
            seed=seed,
            checks=[Check("a check", passed)],
        )

    return run


def test_experiment_main_success_exit_code(capsys):
    assert experiment_main(_fake_run(True), ["--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "ALL CHECKS PASSED" in out
    assert "scale=smoke" in out


def test_experiment_main_failure_exit_code(capsys):
    assert experiment_main(_fake_run(False), ["--seed", "9"]) == 1
    out = capsys.readouterr().out
    assert "SOME CHECKS FAILED" in out
    assert "seed=9" in out


def test_heterogeneous_sampler_respects_index_mapping(rng):
    """The sampler must use each requested WALK's exponent, not positional
    order -- this is what keeps the engine's compaction correct."""
    k = 5_000
    alphas = np.concatenate([np.full(k, 1.3), np.full(k, 4.5)])
    sampler = HeterogeneousZetaSampler(alphas, lazy_probability=0.0)
    heavy = sampler.sample(rng, np.arange(0, k))
    light = sampler.sample(rng, np.arange(k, 2 * k))
    # alpha=1.3 has a famously heavy tail; alpha=4.5 is almost all 1s.
    assert np.quantile(heavy, 0.99) > 50
    assert np.quantile(light, 0.99) <= 3
    # Interleaved requests keep the mapping straight.
    mixed_idx = np.array([0, k, 1, k + 1] * 1000)
    mixed = sampler.sample(rng, mixed_idx)
    heavy_part = mixed[::2][mixed_idx[::2] < k]
    light_part = mixed[1::2]
    assert heavy_part.mean() > 3 * light_part.mean()
