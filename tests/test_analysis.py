"""Tests for the statistics layer (estimators, fits, power laws, MSD)."""

import math

import numpy as np
import pytest

from repro.analysis.estimators import (
    bootstrap_interval,
    censored_median,
    censored_quantile,
    wilson_interval,
)
from repro.analysis.msd import displacement_profile
from repro.analysis.powerlaw import (
    fit_discrete_power_law,
    ks_distance_to_zipf,
    tail_exponent_from_survival,
)
from repro.analysis.scaling import fit_power_law, geometric_grid
from repro.analysis.survival import hitting_cdf
from repro.distributions.unit import ConstantJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.results import CENSORED, HittingTimeSample


# ------------------------------------------------------------------ wilson


def test_wilson_interval_contains_point():
    est = wilson_interval(30, 100)
    assert est.low < est.point < est.high
    assert est.point == pytest.approx(0.3)


def test_wilson_interval_extremes():
    zero = wilson_interval(0, 50)
    assert zero.low == pytest.approx(0.0, abs=1e-12) and zero.high > 0.0
    full = wilson_interval(50, 50)
    assert full.high == pytest.approx(1.0, abs=1e-12) and full.low < 1.0


def test_wilson_interval_validation():
    with pytest.raises(ValueError):
        wilson_interval(5, 0)
    with pytest.raises(ValueError):
        wilson_interval(10, 5)


def test_wilson_coverage(rng):
    """~95% of intervals should contain the true p."""
    p, n, trials = 0.2, 200, 400
    covered = 0
    for _ in range(trials):
        successes = int(rng.binomial(n, p))
        est = wilson_interval(successes, n)
        covered += est.low <= p <= est.high
    assert covered / trials > 0.90


# --------------------------------------------------------------- bootstrap


def test_bootstrap_interval_mean(rng):
    values = rng.normal(10.0, 2.0, size=400)
    point, low, high = bootstrap_interval(values, np.mean, rng=rng)
    assert low < point < high
    assert abs(point - 10.0) < 0.5
    assert high - low < 1.5


def test_bootstrap_empty_rejected(rng):
    with pytest.raises(ValueError):
        bootstrap_interval(np.array([]), np.mean, rng=rng)


# ------------------------------------------------------- censored medians


def test_censored_median_and_quantile():
    # Censored entries count as +inf; with n=6 the (upper) median is the
    # rank-3 order statistic of [3, 5, 7, 9, inf, inf] -> 9.
    times = np.array([5, 7, CENSORED, 9, CENSORED, 3], dtype=np.int64)
    assert censored_median(times, 100) == 9.0
    assert censored_quantile(times, 0.25) == 5.0
    assert math.isinf(censored_quantile(times, 0.9))


def test_censored_median_mostly_censored():
    times = np.array([5, CENSORED, CENSORED, CENSORED], dtype=np.int64)
    assert math.isinf(censored_median(times, 100))


def test_censored_quantile_validation():
    with pytest.raises(ValueError):
        censored_quantile(np.array([1]), 1.5)
    with pytest.raises(ValueError):
        censored_median(np.array([]), 10)


# ------------------------------------------------------------ scaling fits


def test_fit_power_law_exact():
    xs = [1.0, 2.0, 4.0, 8.0]
    ys = [3.0 * x**-1.5 for x in xs]
    fit = fit_power_law(xs, ys)
    assert fit.slope == pytest.approx(-1.5)
    assert fit.prefactor == pytest.approx(3.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.stderr == pytest.approx(0.0, abs=1e-12)
    assert fit.compatible_with(-1.5, tolerance=0.01)
    assert not fit.compatible_with(-2.5, tolerance=0.1)


def test_fit_power_law_noisy(rng):
    xs = np.array(geometric_grid(4, 4096, 12), dtype=float)
    ys = 2.0 * xs**0.7 * np.exp(rng.normal(0, 0.05, xs.size))
    fit = fit_power_law(xs, ys)
    assert fit.compatible_with(0.7, tolerance=0.05)
    assert fit.n_points == xs.size


def test_fit_power_law_validation():
    with pytest.raises(ValueError):
        fit_power_law([1.0, -2.0], [1.0, 1.0])
    with pytest.raises(ValueError):
        fit_power_law([1.0], [1.0])
    with pytest.raises(ValueError):
        fit_power_law([2.0, 2.0], [1.0, 3.0])


def test_geometric_grid():
    grid = geometric_grid(4, 4096, 6)
    assert grid[0] == 4 and grid[-1] == 4096
    assert grid == sorted(set(grid))
    ratios = [b / a for a, b in zip(grid, grid[1:])]
    assert max(ratios) / min(ratios) < 2.0
    assert geometric_grid(5, 5, 3) == [5]
    with pytest.raises(ValueError):
        geometric_grid(0, 10, 3)


# ------------------------------------------------------------- power laws


def test_discrete_mle_recovers_alpha(rng):
    law = ZetaJumpDistribution(2.5, lazy_probability=0.0)
    samples = law.sample(rng, 100_000)
    mle = fit_discrete_power_law(samples)
    assert abs(mle.alpha - 2.5) < 0.03
    assert mle.ks_distance < 0.01


def test_discrete_mle_needs_samples():
    with pytest.raises(ValueError):
        fit_discrete_power_law(np.array([1, 2, 3]))


def test_ks_distance_wrong_alpha_is_large(rng):
    law = ZetaJumpDistribution(2.0, lazy_probability=0.0)
    samples = law.sample(rng, 20_000)
    assert ks_distance_to_zipf(samples, 2.0) < 0.02
    assert ks_distance_to_zipf(samples, 3.5) > 0.1


def test_tail_exponent_from_survival_drops_zeros(rng):
    samples = np.array([1, 1, 2, 3, 10])
    grid, survival = tail_exponent_from_survival(samples, np.array([1, 5, 100]))
    np.testing.assert_array_equal(grid, [1, 5])
    assert survival[0] == 1.0 and survival[1] == pytest.approx(0.2)


# ---------------------------------------------------------------- survival


def test_hitting_cdf_default_grid():
    sample = HittingTimeSample(
        times=np.array([3, 7, 7, CENSORED], dtype=np.int64), horizon=10
    )
    curve = hitting_cdf(sample)
    np.testing.assert_array_equal(curve.steps, [3, 7])
    np.testing.assert_allclose(curve.probability, [0.25, 0.75])
    assert curve.at(2) == 0.0
    assert curve.at(5) == 0.25
    assert curve.at(10) == 0.75
    with pytest.raises(ValueError):
        curve.at(11)


def test_hitting_cdf_explicit_grid():
    sample = HittingTimeSample(
        times=np.array([2, 4, 6], dtype=np.int64), horizon=8
    )
    curve = hitting_cdf(sample, grid=[1, 4, 8])
    np.testing.assert_allclose(curve.probability, [0.0, 2 / 3, 1.0])
    with pytest.raises(ValueError):
        hitting_cdf(sample, grid=[20])


# --------------------------------------------------------------------- MSD


def test_displacement_profile_ballistic_exact(rng):
    profile = displacement_profile(
        ConstantJumpDistribution(10_000), steps=[8, 32], n_walks=300, rng=rng
    )
    np.testing.assert_array_equal(profile.median_l1, [8.0, 32.0])
    np.testing.assert_allclose(profile.mean_l1_trimmed, [8.0, 32.0])


def test_displacement_profile_monotone(rng):
    profile = displacement_profile(
        ZetaJumpDistribution(2.5), steps=[16, 256], n_walks=2_000, rng=rng
    )
    assert profile.median_l1[0] < profile.median_l1[1]


def test_displacement_profile_trim_validation(rng):
    with pytest.raises(ValueError):
        displacement_profile(ZetaJumpDistribution(2.5), [8], 100, rng, trim=0.6)
