"""Smoke tests: every example script must run and tell its story.

Examples are executed in-process (import + main) with their default
parameters; they are sized to finish in seconds.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    yield
    for name in list(sys.modules):
        if name in {
            "quickstart",
            "foraging_simulation",
            "exponent_sensitivity",
            "ants_problem",
            "trajectory_gallery",
            "occupation_heatmap",
        }:
            del sys.modules[name]


def _run_example(name, capsys):
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "parallel Levy walks" in out
    assert "alpha*" in out


def test_foraging_simulation(capsys):
    out = _run_example("foraging_simulation", capsys)
    assert "Food retrieved" in out
    assert "uniform-random(2,3)" in out


def test_ants_problem(capsys):
    out = _run_example("ants_problem", capsys)
    assert "uniform-levy" in out
    assert "lower bound" in out


def test_trajectory_gallery(capsys):
    out = _run_example("trajectory_gallery", capsys)
    assert "ballistic Levy walk" in out
    assert "Figure 6" in out


def test_exponent_sensitivity_downscaled(capsys, monkeypatch):
    """Run the sweep example with tiny Monte-Carlo sizes (same code path)."""
    module = importlib.import_module("exponent_sensitivity")
    monkeypatch.setattr(module, "K", 16)
    monkeypatch.setattr(module, "L", 32)
    monkeypatch.setattr(module, "N_SINGLE", 300)
    monkeypatch.setattr(module, "N_GROUPS", 60)
    module.main()
    out = capsys.readouterr().out
    assert "Empirical best exponent" in out
    assert "alpha*" in out


def test_occupation_heatmap(capsys):
    out = _run_example("occupation_heatmap", capsys)
    assert "EXACT law" in out
    assert "Lemma 3.9 exact check" in out
