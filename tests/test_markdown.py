"""Tests for the markdown renderer behind EXPERIMENTS.md."""

from repro.experiments.common import Check, ExperimentResult
from repro.reporting.markdown import (
    result_to_markdown,
    results_to_markdown,
    table_to_markdown,
)
from repro.reporting.table import Table


def _result(passed=True):
    table = Table(["x", "p"], title="demo table")
    table.add_row(4, 0.25)
    table.add_row(8, 0.125)
    return ExperimentResult(
        experiment_id="EXP-X",
        title="Demo experiment",
        scale="smoke",
        seed=3,
        tables=[table],
        checks=[Check("shape matches", passed, "slope -1.0")],
        notes=["a contextual note"],
    )


def test_table_to_markdown_structure():
    table = Table(["a", "b"], title="t")
    table.add_row(1, None)
    text = table_to_markdown(table)
    lines = text.splitlines()
    assert lines[0] == "**t**"
    assert lines[2] == "| a | b |"
    assert lines[3] == "| --- | --- |"
    assert lines[4] == "| 1 | - |"


def test_result_to_markdown_sections():
    text = result_to_markdown(_result())
    assert text.startswith("## EXP-X — Demo experiment")
    assert "✅ all checks passed" in text
    assert "| 4 | 0.25 |" in text
    assert "- ✅ shape matches — slope -1.0" in text
    assert "> a contextual note" in text


def test_result_to_markdown_failure():
    text = result_to_markdown(_result(passed=False))
    assert "❌ some checks failed" in text
    assert "- ❌ shape matches" in text


def test_results_to_markdown_summary():
    text = results_to_markdown([_result(), _result(passed=False)], preamble="# Title")
    assert text.startswith("# Title")
    assert "**Summary: 1/2 experiments passed" in text
    assert text.count("## EXP-X") == 2
    # Summary table links to sections.
    assert "| [EXP-X](#" in text
