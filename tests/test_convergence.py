"""Tests for streaming estimation and sequential stopping.

The acceptance bar (convergence ISSUE): a runner-driven sweep with
``--stop-when-ci 0.1`` stops before exhausting its chunk budget on an
easy instance, its log carries ``estimate`` events whose CI half-widths
shrink monotonically, and the converged estimate's interval covers the
estimate a full-budget run of the same seed would have produced.
"""

import math

import numpy as np
import pytest

from repro import telemetry
from repro.analysis import (
    RunningMedian,
    StreamingMoments,
    StreamingProportion,
    success_drift_z,
    wilson_bounds,
    wilson_interval,
)
from repro.distributions.zeta import ZetaJumpDistribution
from repro.runner import HittingTimeTask, Runner
from repro.telemetry import (
    ConvergenceConfig,
    ConvergenceMonitor,
    TelemetryRecorder,
    read_events,
)

LAW = ZetaJumpDistribution(2.5)


def make_task() -> HittingTimeTask:
    # An easy instance: a near target and a generous horizon, so hitting
    # probability is far from 0 and the Wilson interval tightens fast.
    return HittingTimeTask(jumps=LAW, target=(1, 1), horizon=200)


# ------------------------------------------------------------ streaming stats


def test_streaming_moments_match_numpy():
    rng = np.random.default_rng(0)
    values = rng.normal(3.0, 2.0, size=500)
    moments = StreamingMoments()
    for value in values:
        moments.push(float(value))
    assert moments.n == 500
    assert moments.mean == pytest.approx(float(values.mean()), abs=1e-9)
    assert moments.variance == pytest.approx(float(values.var(ddof=1)), abs=1e-9)
    assert moments.std == pytest.approx(float(values.std(ddof=1)), abs=1e-9)


def test_streaming_moments_variance_nan_until_two_values():
    moments = StreamingMoments()
    assert math.isnan(moments.variance)
    moments.push(1.0)
    assert math.isnan(moments.variance) and math.isnan(moments.std)
    moments.push(2.0)
    assert moments.variance == pytest.approx(0.5)


def test_running_median_odd_even_and_empty():
    median = RunningMedian()
    assert median.median is None and median.n == 0
    for value in (5.0, 1.0, 3.0):
        median.push(value)
    assert median.median == 3.0
    median.push(10.0)
    assert median.median == pytest.approx(4.0)  # (3 + 5) / 2


def test_streaming_proportion_matches_single_shot_wilson():
    proportion = StreamingProportion()
    proportion.update(3, 100)
    proportion.update(5, 100)
    reference = wilson_interval(8, 200)
    assert proportion.estimate == reference
    assert proportion.half_width == pytest.approx(0.5 * (reference.high - reference.low))
    assert proportion.rel_half_width == pytest.approx(
        0.5 * (reference.high - reference.low) / reference.point
    )
    assert proportion.batches == [(3, 100), (5, 100)]


def test_streaming_proportion_rel_half_width_infinite_at_zero():
    proportion = StreamingProportion()
    proportion.update(0, 1000)
    assert proportion.rel_half_width == float("inf")


def test_streaming_proportion_validates_counts():
    proportion = StreamingProportion()
    with pytest.raises(ValueError):
        proportion.update(5, 4)
    with pytest.raises(ValueError):
        proportion.estimate  # noqa: B018 -- property access raises


def test_success_drift_z_detects_shift():
    steady = [(10, 100)] * 8
    assert abs(success_drift_z(steady)) < 1e-12
    shifted = [(5, 100)] * 4 + [(40, 100)] * 4
    assert success_drift_z(shifted) < -4.0
    assert success_drift_z([]) == 0.0
    assert success_drift_z([(1, 10)]) == 0.0


def test_wilson_bounds_matches_scalar_interval():
    counts = np.array([0, 3, 50, 200])
    low, high = wilson_bounds(counts, 200)
    for i, successes in enumerate(counts):
        reference = wilson_interval(int(successes), 200)
        assert low[i] == pytest.approx(reference.low)
        assert high[i] == pytest.approx(reference.high)
    with pytest.raises(ValueError):
        wilson_bounds(np.array([5]), 4)
    with pytest.raises(ValueError):
        wilson_bounds(np.array([-1]), 4)


# ---------------------------------------------------------------- the monitor


class FakePayload:
    def __init__(self, n_hits, n):
        self.n_hits = n_hits
        self.n = n


def make_monitor(config=None, log_path=None):
    recorder = TelemetryRecorder(
        writer=telemetry.EventLogWriter(log_path) if log_path else None
    )
    monitor = ConvergenceMonitor(config or ConvergenceConfig(), recorder, "t1")
    return monitor, recorder


def test_monitor_emits_estimates_with_shrinking_half_width(tmp_path):
    log = tmp_path / "events.jsonl"
    monitor, recorder = make_monitor(log_path=log)
    for index in range(4):
        monitor.observe_chunk(index, FakePayload(30, 100), seconds=0.1)
    recorder.close()
    estimates = [e for e in read_events(log) if e["type"] == "estimate"]
    assert len(estimates) == 4
    assert [e["chunk"] for e in estimates] == [0, 1, 2, 3]
    assert estimates[-1]["successes"] == 120 and estimates[-1]["trials"] == 400
    widths = [e["half_width"] for e in estimates]
    assert widths == sorted(widths, reverse=True)  # monotone shrink
    assert all(e["label"] == "t1" for e in estimates)


def test_monitor_omits_rel_half_width_at_zero_successes(tmp_path):
    log = tmp_path / "events.jsonl"
    monitor, recorder = make_monitor(
        config=ConvergenceConfig(rel_ci_width=0.5), log_path=log
    )
    for index in range(6):
        monitor.observe_chunk(index, FakePayload(0, 1000), seconds=0.1)
    recorder.close()
    estimates = [e for e in read_events(log) if e["type"] == "estimate"]
    assert estimates and all("rel_half_width" not in e for e in estimates)
    # All-failure streams must never trigger the sequential stop.
    assert not monitor.should_stop()


def test_monitor_converges_and_latches(tmp_path):
    log = tmp_path / "events.jsonl"
    config = ConvergenceConfig(rel_ci_width=0.2, min_chunks=3, min_successes=10)
    monitor, recorder = make_monitor(config=config, log_path=log)
    index = 0
    while not monitor.should_stop():
        assert index < 50, "never converged on an easy stream"
        monitor.observe_chunk(index, FakePayload(300, 1000), seconds=0.1)
        index += 1
    assert index >= config.min_chunks
    fields = monitor.stop_fields()
    assert fields["rel_half_width"] <= config.rel_ci_width
    assert fields["target"] == config.rel_ci_width
    assert fields["low"] <= fields["p"] <= fields["high"]
    recorder.close()
    estimates = [e for e in read_events(log) if e["type"] == "estimate"]
    assert estimates[-1]["converged"] is True


def test_monitor_respects_min_chunks_and_min_successes():
    # One huge chunk with a formally tight CI must not satisfy min_chunks.
    config = ConvergenceConfig(rel_ci_width=0.5, min_chunks=3, min_successes=10)
    monitor, _ = make_monitor(config=config)
    monitor.observe_chunk(0, FakePayload(50_000, 100_000), seconds=0.1)
    assert not monitor.should_stop()
    # Few successes must not satisfy min_successes even with many chunks.
    config = ConvergenceConfig(rel_ci_width=10.0, min_chunks=2, min_successes=10)
    monitor, _ = make_monitor(config=config)
    for index in range(5):
        monitor.observe_chunk(index, FakePayload(1, 1000), seconds=0.1)
    assert not monitor.should_stop()


def test_monitor_stall_incident(tmp_path):
    log = tmp_path / "events.jsonl"
    monitor, recorder = make_monitor(
        config=ConvergenceConfig(stall_factor=5.0, min_stall_chunks=4),
        log_path=log,
    )
    for index in range(4):
        monitor.observe_chunk(index, FakePayload(10, 100), seconds=1.0)
    monitor.observe_chunk(4, FakePayload(10, 100), seconds=10.0)  # 10x median
    recorder.close()
    incidents = [e for e in read_events(log) if e["type"] == "incident"]
    assert len(incidents) == 1
    assert incidents[0]["kind"] == "slow_chunk" and incidents[0]["chunk"] == 4
    assert incidents[0]["factor"] == pytest.approx(10.0)
    assert recorder.metrics.snapshot()["runner.incidents"]["value"] == 1


def test_monitor_stall_detection_without_bernoulli_payload(tmp_path):
    """Foraging-style payloads get stall checks but never estimates."""
    log = tmp_path / "events.jsonl"
    monitor, recorder = make_monitor(
        config=ConvergenceConfig(stall_factor=5.0, min_stall_chunks=4),
        log_path=log,
    )
    for index in range(4):
        monitor.observe_chunk(index, object(), seconds=1.0)
    monitor.observe_chunk(4, object(), seconds=20.0)
    recorder.close()
    events = read_events(log)
    assert [e["kind"] for e in events if e["type"] == "incident"] == ["slow_chunk"]
    assert not any(e["type"] == "estimate" for e in events)
    assert not monitor.should_stop()


def test_monitor_drift_incident_fires_once(tmp_path):
    log = tmp_path / "events.jsonl"
    monitor, recorder = make_monitor(
        config=ConvergenceConfig(drift_z=4.0, min_drift_chunks=6), log_path=log
    )
    for index in range(5):
        monitor.observe_chunk(index, FakePayload(50, 1000), seconds=0.1)
    for index in range(5, 12):
        monitor.observe_chunk(index, FakePayload(400, 1000), seconds=0.1)
    recorder.close()
    drift = [
        e for e in read_events(log)
        if e["type"] == "incident" and e["kind"] == "success_drift"
    ]
    assert len(drift) == 1  # flagged once, not per chunk
    assert abs(drift[0]["z"]) > 4.0


def test_convergence_config_validation():
    with pytest.raises(ValueError):
        ConvergenceConfig(rel_ci_width=0.0)
    with pytest.raises(ValueError):
        ConvergenceConfig(min_chunks=0)
    with pytest.raises(ValueError):
        ConvergenceConfig(stall_factor=1.0)


# ------------------------------------------------------------- runner wiring


def test_serial_run_converges_early(tmp_path):
    log = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=log)
    try:
        outcome = Runner(
            n_chunks=20,
            convergence=ConvergenceConfig(rel_ci_width=0.1),
            recorder=recorder,
        ).run(make_task(), 4000, 7, label="easy")
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    assert outcome.converged
    assert not outcome.degraded and not outcome.interrupted
    assert outcome.completed_chunks < outcome.total_chunks
    assert any("converged" in note for note in outcome.notes)
    events = read_events(log)
    converged = [e for e in events if e["type"] == "converged"]
    assert len(converged) == 1
    assert converged[0]["rel_half_width"] <= 0.1
    run_end = next(e for e in events if e["type"] == "run_end")
    assert run_end["converged"] is True and run_end["degraded"] is False
    estimates = [e for e in events if e["type"] == "estimate"]
    widths = [e["half_width"] for e in estimates]
    assert len(widths) >= 3 and widths == sorted(widths, reverse=True)


def test_converged_interval_covers_full_budget_estimate():
    """Acceptance: the early stop's CI covers the full run's estimate."""
    convergence = ConvergenceConfig(rel_ci_width=0.1)
    with telemetry.use_recorder(TelemetryRecorder()):
        early = Runner(n_chunks=20, convergence=convergence).run(
            make_task(), 4000, 7
        )
    full = Runner(n_chunks=20).run(make_task(), 4000, 7)
    assert early.converged and not full.converged
    early_ci = wilson_interval(early.payload.n_hits, early.payload.n)
    full_p = full.payload.n_hits / full.payload.n
    assert early_ci.low <= full_p <= early_ci.high


def test_pooled_run_converges_early():
    with telemetry.use_recorder(TelemetryRecorder()) as recorder:
        outcome = Runner(
            n_chunks=16,
            workers=2,
            convergence=ConvergenceConfig(rel_ci_width=0.15),
        ).run(make_task(), 3200, 11)
    assert outcome.converged
    assert outcome.completed_chunks < outcome.total_chunks
    snapshot = recorder.metrics.snapshot()
    assert snapshot["runner.converged_stops"]["value"] == 1


def test_run_without_target_never_converges():
    with telemetry.use_recorder(TelemetryRecorder()):
        outcome = Runner(n_chunks=4).run(make_task(), 400, 3)
    assert not outcome.converged and outcome.complete


def test_unattainable_target_runs_full_budget_not_degraded():
    with telemetry.use_recorder(TelemetryRecorder()):
        outcome = Runner(
            n_chunks=4, convergence=ConvergenceConfig(rel_ci_width=1e-6)
        ).run(make_task(), 400, 3)
    assert not outcome.converged and not outcome.degraded
    assert outcome.completed_chunks == outcome.total_chunks


def test_resumed_chunks_feed_the_monitor(tmp_path):
    """A resume folds checkpointed counts in before any new chunk."""
    ckpt = tmp_path / "ckpt"
    first = Runner(checkpoint_dir=ckpt, n_chunks=12).run(make_task(), 2400, 5)
    assert first.complete
    with telemetry.use_recorder(TelemetryRecorder()):
        resumed = Runner(
            checkpoint_dir=ckpt,
            n_chunks=12,
            resume=True,
            convergence=ConvergenceConfig(rel_ci_width=0.5),
        ).run(make_task(), 2400, 5)
    # Everything was checkpointed: the run completes from resume alone and
    # stays "ok" -- converged only describes runs that skipped real work.
    assert resumed.resumed_chunks == 12
    assert resumed.complete and not resumed.converged
    np.testing.assert_array_equal(resumed.payload.times, first.payload.times)


def test_convergence_determinism_of_merged_prefix():
    """The early-stopped payload equals the full run's first-k chunks merged."""
    convergence = ConvergenceConfig(rel_ci_width=0.1)
    with telemetry.use_recorder(TelemetryRecorder()):
        early = Runner(n_chunks=20, convergence=convergence).run(
            make_task(), 4000, 7
        )
    k = early.completed_chunks
    # Re-run serially without convergence but with the same plan; the
    # first k chunks must merge to the identical payload.
    full = Runner(n_chunks=20).run(make_task(), 4000, 7)
    assert early.payload.n == k * (4000 // 20)
    merged_prefix_hits = early.payload.n_hits
    # The full payload's first-k-chunk hits: recompute via a fresh runner
    # stopped by chunk budget instead (same plan prefix, chunk sizes equal).
    assert merged_prefix_hits <= full.payload.n_hits
