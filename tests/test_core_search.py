"""Tests for ParallelLevySearch and the ANTS wrapper."""

import pytest

from repro.core.ants import UniformANTSAlgorithm, universal_lower_bound
from repro.core.search import ParallelLevySearch
from repro.core.strategies import FixedExponentStrategy, UniformRandomExponentStrategy
from repro.lattice.points import l1_norm


def test_find_reports_consistent_result(rng):
    search = ParallelLevySearch(k=32, strategy=FixedExponentStrategy(2.5))
    result = search.find((6, 4), rng=rng)
    assert result.k == 32
    assert result.exponents.shape == (32,)
    if result.found:
        assert result.time >= l1_norm((6, 4))
        assert 0 <= result.finder_index < 32
        assert result.finder_exponent == pytest.approx(2.5)
    else:
        assert result.time is None and result.finder_index is None


def test_find_nearby_target_succeeds(rng):
    search = ParallelLevySearch(k=64)
    result = search.find((3, 2), rng=rng)
    assert result.found
    assert result.time >= 5


def test_find_with_random_strategy_reports_finder_exponent(rng):
    search = ParallelLevySearch(k=64, strategy=UniformRandomExponentStrategy())
    result = search.find((5, 5), rng=rng)
    assert result.found
    assert 2.0 < result.finder_exponent < 3.0
    assert result.finder_exponent == pytest.approx(
        float(result.exponents[result.finder_index])
    )


def test_default_horizon_scales_with_distance():
    search = ParallelLevySearch(k=4)
    assert search.default_horizon((10, 0)) == 4 * (100 + 10)
    assert search.default_horizon((0, 0)) == 4 * 2


def test_k_validation():
    with pytest.raises(ValueError):
        ParallelLevySearch(k=0)


def test_sample_parallel_hitting_times(rng):
    search = ParallelLevySearch(k=16, strategy=FixedExponentStrategy(2.4))
    sample = search.sample_parallel_hitting_times((8, 4), n_runs=20, rng=rng)
    assert sample.n == 20
    assert sample.hit_fraction > 0.3
    if sample.n_hits:
        assert sample.hit_times().min() >= 12


def test_parallel_k_dominates_single(rng):
    """More walks can only help: P(tau_64 <= H) >= P(tau_8 <= H)."""
    target, horizon = (10, 6), 500
    small = ParallelLevySearch(8, FixedExponentStrategy(2.5)).sample_parallel_hitting_times(
        target, n_runs=60, horizon=horizon, rng=rng
    )
    large = ParallelLevySearch(64, FixedExponentStrategy(2.5)).sample_parallel_hitting_times(
        target, n_runs=60, horizon=horizon, rng=rng
    )
    assert large.hit_fraction >= small.hit_fraction - 0.1


def test_intermittent_detection_flag(rng):
    full = ParallelLevySearch(32, FixedExponentStrategy(2.2), detect_during_jump=True)
    weak = ParallelLevySearch(32, FixedExponentStrategy(2.2), detect_during_jump=False)
    target, horizon = (12, 8), 800
    p_full = full.sample_parallel_hitting_times(target, 40, horizon, rng).hit_fraction
    p_weak = weak.sample_parallel_hitting_times(target, 40, horizon, rng).hit_fraction
    assert p_full >= p_weak - 0.05


# ------------------------------------------------------------------- ANTS


def test_universal_lower_bound_values():
    assert universal_lower_bound(1, 10) == pytest.approx(100.0)
    assert universal_lower_bound(100, 10) == pytest.approx(10.0)
    assert universal_lower_bound(10, 10) == pytest.approx(10.0)


def test_universal_lower_bound_validation():
    with pytest.raises(ValueError):
        universal_lower_bound(0, 5)
    with pytest.raises(ValueError):
        universal_lower_bound(5, 0)


def test_ants_algorithm_end_to_end(rng):
    ants = UniformANTSAlgorithm(k=48)
    assert ants.k == 48
    result = ants.search((4, 4), rng=rng)
    assert result.found
    sample = ants.sample_search_times((4, 4), n_runs=10, rng=rng)
    assert sample.n == 10
    ratio = ants.competitive_ratio(float(result.time), 8)
    assert ratio >= 1.0  # cannot beat the lower bound


def test_search_time_respects_lower_bound(rng):
    """tau >= l always (need l steps to reach distance l)."""
    ants = UniformANTSAlgorithm(k=64)
    sample = ants.sample_search_times((20, 12), n_runs=15, rng=rng)
    if sample.n_hits:
        assert sample.hit_times().min() >= 32
