"""The persistent result cache (:mod:`repro.serve.cache`).

Covers the lookup contract (key + CI-tightness), persistence across
instances (a daemon restart), the JSONL durability contract shared with
the run registry -- kill-mid-write leaves a torn tail which readers
skip and the next put heals -- LRU bounding, newest-vs-tightest entry
resolution, registry warm starts, and atomic gc compaction.
"""

import json

from repro.api.query import EstimateResponse, canonical_key
from repro.serve.cache import ResultCache
from repro.telemetry.registry import RunRegistry, build_run_record, new_run_id


def _response(key="k1", p=0.1, half=0.02, trials=1000, **extra):
    return EstimateResponse(
        key=key, tier="simulation", p=p, low=p - half, high=p + half,
        trials=trials, successes=int(round(p * trials)),
        source="monte-carlo", **extra,
    )


def test_put_get_and_ci_tightness(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(_response(half=0.02))
    assert cache.get("k1").p == 0.1
    assert cache.get("missing") is None
    assert cache.get("k1", max_ci=0.05) is not None
    assert cache.get("k1", max_ci=0.01) is None  # too loose for the ask


def test_persists_across_instances(tmp_path):
    ResultCache(tmp_path).put(_response())
    reopened = ResultCache(tmp_path)  # a daemon restart
    assert len(reopened) == 1
    assert reopened.get("k1").trials == 1000


def test_tighter_entry_wins_on_duplicate_key(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(_response(half=0.01, trials=4000))
    cache.put(_response(half=0.05, trials=500))  # looser: must not clobber
    assert cache.get("k1").trials == 4000
    # and the same resolution holds after a reload of the append-only log
    assert ResultCache(tmp_path).get("k1").trials == 4000


# ------------------------------------------------------------------ durability


def test_reader_skips_a_torn_tail(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(_response("k1"))
    cache.put(_response("k2"))
    with open(cache.path, "ab") as handle:
        handle.write(b'{"key": "torn-')  # kill-mid-write signature
    reopened = ResultCache(tmp_path)
    assert sorted(e.key for e in reopened.entries()) == ["k1", "k2"]


def test_put_heals_a_torn_tail(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(_response("k1"))
    with open(cache.path, "ab") as handle:
        handle.write(b'{"key": "torn-')
    healed = ResultCache(tmp_path)
    healed.put(_response("k3"))  # must NOT glue onto the fragment
    assert sorted(e.key for e in ResultCache(tmp_path).entries()) == ["k1", "k3"]
    # every complete line in the file is valid JSON again
    lines = [l for l in cache.path.read_text().split("\n") if l.strip()]
    parsed = []
    for line in lines:
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            pass
    assert {entry["key"] for entry in parsed} == {"k1", "k3"}


def test_interior_damage_is_skipped(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(_response("k1"))
    cache.put(_response("k2"))
    cache.put(_response("k3"))
    lines = cache.path.read_text().splitlines()
    lines[1] = lines[1][: len(lines[1]) // 2]  # damage an interior record
    cache.path.write_text("\n".join(lines) + "\n")
    reopened = ResultCache(tmp_path)
    assert sorted(e.key for e in reopened.entries()) == ["k1", "k3"]


# ------------------------------------------------------------------- bounding


def test_lru_eviction_bounds_the_index(tmp_path):
    cache = ResultCache(tmp_path, max_entries=3)
    for i in range(5):
        cache.put(_response(f"k{i}"))
    assert len(cache) == 3
    assert cache.get("k0") is None  # oldest evicted
    assert cache.get("k4") is not None


def test_gc_compacts_to_the_index(tmp_path):
    cache = ResultCache(tmp_path, max_entries=2)
    for i in range(6):
        cache.put(_response(f"k{i}"))
    assert len(cache.path.read_text().splitlines()) == 6  # append-only log
    kept = cache.gc()
    assert kept == 2
    assert len(cache.path.read_text().splitlines()) == 2
    assert len(ResultCache(tmp_path)) == 2


# ----------------------------------------------------------------- warm start


def test_warm_start_imports_registry_estimates_in_memory_only(tmp_path):
    registry = RunRegistry(tmp_path / "registry")
    row = {
        "key": "alpha=2.2 l=24",
        "label": "alpha=2.2 l=24",
        "law": "alpha=2.2",
        "params": {"alpha": 2.2, "l": 24},
        "trials": 2000,
        "successes": 100,
        "p": 0.05,
        "low": 0.04,
        "high": 0.06,
        "half_width": 0.01,
        "horizon": 576,
        "status": "complete",
    }
    registry.register(
        build_run_record(
            run_id=new_run_id(), command="sweep", label="t", estimates=[row]
        )
    )
    cache = ResultCache(tmp_path / "cache")
    imported = cache.warm_start(registry)
    assert imported == 1
    hit = cache.get(canonical_key(2.2, 24))
    assert hit is not None and hit.trials == 2000
    assert not cache.path.exists()  # in-memory only: the registry persists it
