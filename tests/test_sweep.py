"""Determinism and scheduling properties of the declarative sweep API.

The contract under test (docs/sweep.md): a grid point's sample is a pure
function of ``(sweep seed, point index, n, n_chunks)`` -- identical
across in-process execution, a shared worker pool, and a
checkpoint-resumed rerun -- and per-point aggregation (bootstrap groups)
is reproducible from the point's analysis seed.
"""

import numpy as np
import pytest

from repro.engine.results import CENSORED
from repro.runner import CCRWTask, HittingTimeTask, Runner
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.scheduler import point_seeds
from repro.sweep.spec import default_task

SEED = 11


def make_spec():
    return SweepSpec(
        axes={"alpha": (2.2, 2.8), "l": (12, 20), "detect": (True, False)},
        n=240,
        horizon=lambda p: p["l"] ** 2,
        k=6,
        n_groups=40,
    )


@pytest.fixture(scope="module")
def serial():
    return run_sweep(make_spec(), seed=SEED)


# ------------------------------------------------------------- expansion


def test_expansion_order_and_policies():
    points = make_spec().expand()
    assert len(points) == 8
    # Last axis varies fastest (cartesian in declaration order).
    assert [p.params["detect"] for p in points[:2]] == [True, False]
    assert [p.params["alpha"] for p in points] == [2.2] * 4 + [2.8] * 4
    assert points[0].horizon == 144 and points[2].horizon == 400
    assert points[0].label == "point-0000"
    assert points[0].k == 6 and points[0].n_groups == 40


def test_where_filter_reindexes():
    spec = make_spec()
    filtered = SweepSpec(
        axes=spec.axes,
        n=spec.n,
        horizon=spec.horizon,
        where=lambda p: p["detect"],
    ).expand()
    assert len(filtered) == 4
    assert [p.index for p in filtered] == [0, 1, 2, 3]
    assert all(p.params["detect"] for p in filtered)


def test_zipped_mapping_axis_merges_params():
    spec = SweepSpec(
        axes={"cell": [{"k": 8, "l": 12}, {"k": 16, "l": 20}], "alpha": (2.5,)},
        n=10,
        horizon=100,
    )
    points = spec.expand()
    assert [(p.params["k"], p.params["l"]) for p in points] == [(8, 12), (16, 20)]


def test_default_task_reserved_axes():
    walk = default_task({"alpha": 2.5, "l": 12, "detect": False}, 144)
    assert isinstance(walk, HittingTimeTask)
    assert walk.detect_during_jump is False
    ccrw = default_task({"bout": 8.0, "l": 12}, 144)
    assert isinstance(ccrw, CCRWTask)
    assert ccrw.extensive_bout_mean == 8.0
    with pytest.raises(ValueError):
        default_task({"l": 12}, 144)
    with pytest.raises(ValueError):
        default_task({"alpha": 2.5}, 144)


def test_point_seeds_pure_in_seed_and_index():
    first = point_seeds(7, 5)
    again = point_seeds(7, 5)
    assert first == again
    # A prefix of a longer spawn is unchanged: adding points never
    # re-seeds existing ones.
    longer = point_seeds(7, 9)
    assert longer[:5] == first
    assert point_seeds(8, 5) != first


# ----------------------------------------------------------- determinism


def test_pooled_matches_serial(serial):
    pooled = run_sweep(make_spec(), seed=SEED, runner=Runner(workers=2))
    assert len(pooled) == len(serial)
    for a, b in zip(serial, pooled):
        np.testing.assert_array_equal(a.sample.times, b.sample.times)
        np.testing.assert_array_equal(a.parallel, b.parallel)


def test_resumed_matches_serial(tmp_path, serial):
    first = run_sweep(
        make_spec(), seed=SEED, runner=Runner(checkpoint_dir=tmp_path)
    )
    for a, b in zip(serial, first):
        np.testing.assert_array_equal(a.sample.times, b.sample.times)
    # Destroy a third of the durable chunks across several points, then
    # resume: the missing chunks are recomputed, the surviving ones
    # loaded, and the merged samples must be bit-identical regardless.
    destroyed = 0
    for payload in sorted(tmp_path.glob("*/chunks/chunk_*.npz"))[::3]:
        payload.unlink()
        payload.with_suffix(".json").unlink()
        destroyed += 1
    assert destroyed > 0
    resumed = run_sweep(
        make_spec(), seed=SEED, runner=Runner(checkpoint_dir=tmp_path, resume=True)
    )
    for a, b in zip(serial, resumed):
        np.testing.assert_array_equal(a.sample.times, b.sample.times)
        np.testing.assert_array_equal(a.parallel, b.parallel)
    assert any(r.outcome.resumed_chunks > 0 for r in resumed)


def test_analysis_seed_reproducible(serial):
    point = serial.results[0]
    np.testing.assert_array_equal(point.bootstrap(4, 25), point.bootstrap(4, 25))


# ------------------------------------------------------------ scheduling


def test_shared_pool_interleaves_and_aggregates(tmp_path):
    """All points share one runner: one pool, one checkpoint root."""
    runner = Runner(checkpoint_dir=tmp_path, workers=2, n_chunks=4)
    result = run_sweep(make_spec(), seed=SEED, runner=runner, label="grid")
    assert len(result) == 8
    assert not result.degraded and not result.interrupted
    # Every point's chunks landed under its own label in the shared root.
    directories = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
    assert directories == [f"grid-point-{i:04d}" for i in range(8)]


def test_group_minimum_aggregation_without_n_groups():
    spec = SweepSpec(
        axes={"alpha": (2.5,), "l": (12,)},
        n=120,
        horizon=144,
        k=8,
    )
    result = run_sweep(spec, seed=3)
    point = result.results[0]
    assert point.parallel is not None
    assert point.parallel.shape == (15,)  # 120 walks / k=8 exact blocks
    valid = (point.parallel == CENSORED) | (point.parallel >= 0)
    assert valid.all()


def test_summary_and_dict_roundtrip(serial):
    text = serial.summary_table().render()
    assert "alpha=2.2" in text and "complete" in text
    payload = serial.to_dict()
    assert payload["n_points"] == 8
    assert len(payload["points"]) == 8
    assert payload["points"][0]["completed_chunks"] == 8


def test_select_and_one(serial):
    assert len(serial.select(alpha=2.2)) == 4
    point = serial.one(alpha=2.2, l=12, detect=True)
    assert point.point.index == 0
    with pytest.raises(KeyError):
        serial.one(alpha=2.2)


def test_empty_grid():
    spec = SweepSpec(axes={"alpha": (2.5,)}, n=10, horizon=10, where=lambda p: False)
    result = run_sweep(spec, seed=0)
    assert len(result) == 0 and not result.degraded
