"""Tests for the persistent run registry and cross-run drift detection.

Covers the durability contract (torn-tail tolerance and self-healing,
concurrent registration, strict interior-damage detection), gc's
checkpoint protection, the lookup warm-start seam, the CI-aware
DRIFT/WARN/ok verdicts, and the ``runs`` CLI — including the acceptance
bar: ``runs compare A B --strict`` exits non-zero on an injected
disjoint-CI shift, and auto-registered sweep records join their event
log and metrics snapshot on ``run_id``.
"""

import json
import multiprocessing
import os

import pytest

from repro.cli import EXIT_FAILED, EXIT_OK, EXIT_USAGE, main
from repro.io_utils import CorruptResultError
from repro.telemetry.registry import (
    OVERLAP_WARN_FRACTION,
    RunRecord,
    RunRegistry,
    build_run_record,
    compare_estimates,
    compare_records,
    config_hash,
    estimate_key,
    new_run_id,
    outcome_for_exit_code,
)


def _estimate(key="alpha=2.2 l=24", p=0.05, half=0.01, trials=2000, **extra):
    row = {
        "key": key,
        "label": key,
        "law": "alpha=2.2",
        "params": {"alpha": 2.2, "l": 24},
        "trials": trials,
        "successes": int(round(p * trials)),
        "p": p,
        "low": p - half,
        "high": p + half,
        "half_width": half,
        "horizon": 576,
        "status": "complete",
    }
    row.update(extra)
    return row


def _record(registry=None, run_id=None, **kwargs):
    kwargs.setdefault("command", "sweep")
    kwargs.setdefault("label", "test")
    record = build_run_record(run_id=run_id or new_run_id(), **kwargs)
    if registry is not None:
        registry.register(record)
    return record


# ---------------------------------------------------------------- the record


def test_record_round_trips_through_json(tmp_path):
    registry = RunRegistry(tmp_path)
    original = _record(
        registry,
        seed=7,
        scale="smoke",
        config={"alpha": [2.2], "seed": 7},
        exit_code=3,
        estimates=[_estimate()],
        walltime_seconds=1.234567,
        workers=4,
        pool={"effective_parallelism": 3.2, "pool_speedup": 2.9},
        artifacts={"events": "events.jsonl", "checkpoint_dir": "ckpt"},
        notes=["deadline hit"],
    )
    (loaded,) = registry.records(strict=True)
    assert loaded.run_id == original.run_id
    assert loaded.seed == 7
    assert loaded.scale == "smoke"
    assert loaded.outcome == "degraded"
    assert loaded.exit_code == 3
    assert loaded.config_hash == config_hash({"seed": 7, "alpha": [2.2]})
    assert loaded.estimates == [_estimate()]
    assert loaded.walltime_seconds == pytest.approx(1.235)
    assert loaded.pool == {"effective_parallelism": 3.2, "pool_speedup": 2.9}
    assert loaded.artifacts["checkpoint_dir"] == "ckpt"
    assert loaded.notes == ["deadline hit"]


def test_from_dict_tolerates_unknown_and_missing_fields():
    loaded = RunRecord.from_dict(
        {"run_id": "r1", "command": "sweep", "from_the_future": {"x": 1}}
    )
    assert loaded.run_id == "r1"
    assert loaded.outcome == "ok"
    assert loaded.estimates == []


def test_from_dict_requires_run_id():
    with pytest.raises(CorruptResultError):
        RunRecord.from_dict({"command": "sweep"})


def test_outcome_classification_matches_documented_exit_codes():
    assert outcome_for_exit_code(0) == "ok"
    assert outcome_for_exit_code(3) == "degraded"
    assert outcome_for_exit_code(4) == "quarantined"
    assert outcome_for_exit_code(130) == "interrupted"
    assert outcome_for_exit_code(99) == "exit-99"


def test_estimate_key_is_order_independent_and_canonical():
    assert estimate_key({"l": 24, "alpha": 2.2}) == estimate_key(
        {"alpha": 2.2, "l": 24}
    )
    assert estimate_key({"alpha": 2.20, "l": 24}) == "alpha=2.2 l=24"


def test_config_hash_ignores_key_order_but_not_values():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})


# ------------------------------------------------------------------ durability


def test_reader_tolerates_torn_final_line(tmp_path):
    registry = RunRegistry(tmp_path)
    first = _record(registry)
    second = _record(registry)
    with open(registry.path, "ab") as handle:
        handle.write(b'{"run_id": "torn-')  # kill-mid-register signature
    loaded = registry.records(strict=True)
    assert [r.run_id for r in loaded] == [first.run_id, second.run_id]


def test_register_heals_a_torn_tail(tmp_path):
    registry = RunRegistry(tmp_path)
    first = _record(registry)
    with open(registry.path, "ab") as handle:
        handle.write(b'{"run_id": "torn-')
    third = _record(registry)  # must NOT glue onto the fragment
    loaded = registry.records()
    assert [r.run_id for r in loaded] == [first.run_id, third.run_id]


def test_interior_damage_skipped_by_default_raised_under_strict(tmp_path):
    registry = RunRegistry(tmp_path)
    _record(registry)
    _record(registry)
    last = _record(registry)
    lines = registry.path.read_text().splitlines()
    lines[1] = lines[1][: len(lines[1]) // 2]  # damage an interior record
    registry.path.write_text("\n".join(lines) + "\n")
    loaded = registry.records()
    assert len(loaded) == 2
    assert loaded[-1].run_id == last.run_id
    with pytest.raises(CorruptResultError):
        registry.records(strict=True)


def _register_batch(directory, worker, count):
    registry = RunRegistry(directory)
    for index in range(count):
        registry.register(
            build_run_record(
                command="sweep", label=f"w{worker}-{index}", run_id=f"r-{worker}-{index}"
            )
        )


def test_concurrent_registration_never_interleaves(tmp_path):
    """4 processes x 10 records: every line must parse, none may be lost."""
    ctx = multiprocessing.get_context("spawn")
    workers = [
        ctx.Process(target=_register_batch, args=(str(tmp_path), w, 10))
        for w in range(4)
    ]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    registry = RunRegistry(tmp_path)
    loaded = registry.records(strict=True)  # strict: any tearing would raise
    assert len(loaded) == 40
    assert {r.run_id for r in loaded} == {
        f"r-{w}-{i}" for w in range(4) for i in range(10)
    }


# ------------------------------------------------------------------------- gc


def test_gc_keeps_newest_and_protects_checkpointed_records(tmp_path):
    registry = RunRegistry(tmp_path / "reg")
    checkpoint_dir = tmp_path / "ckpt"
    checkpoint_dir.mkdir()
    protected = _record(registry, artifacts={"checkpoint_dir": checkpoint_dir})
    stale = _record(registry, artifacts={"checkpoint_dir": tmp_path / "gone"})
    newest = _record(registry)
    kept, dropped = registry.gc(keep=1)
    assert {r.run_id for r in kept} == {protected.run_id, newest.run_id}
    assert [r.run_id for r in dropped] == [stale.run_id]
    # The rewrite is durable: a fresh reader sees the same survivors.
    assert {r.run_id for r in RunRegistry(tmp_path / "reg").records(strict=True)} == {
        protected.run_id,
        newest.run_id,
    }


def test_gc_dry_run_reports_without_rewriting(tmp_path):
    registry = RunRegistry(tmp_path)
    for _ in range(3):
        _record(registry)
    kept, dropped = registry.gc(keep=1, dry_run=True)
    assert len(kept) == 1 and len(dropped) == 2
    assert len(registry.records()) == 3


# --------------------------------------------------------------- resolve/lookup


def test_resolve_accepts_id_prefix_last_and_prev(tmp_path):
    registry = RunRegistry(tmp_path)
    first = _record(registry, run_id="20260101T000000Z-aaaaaa")
    second = _record(registry, run_id="20260102T000000Z-bbbbbb")
    assert registry.resolve("last").run_id == second.run_id
    assert registry.resolve("prev").run_id == first.run_id
    assert registry.resolve("20260101").run_id == first.run_id
    with pytest.raises(KeyError, match="ambiguous"):
        registry.resolve("2026")
    with pytest.raises(KeyError, match="no run matching"):
        registry.resolve("nope")


def test_lookup_returns_freshest_adequate_estimate(tmp_path):
    registry = RunRegistry(tmp_path)
    wide = _record(registry, estimates=[_estimate(half=0.05)])
    tight = _record(registry, estimates=[_estimate(half=0.004)])
    empty = {
        "key": "alpha=2.2 l=24",
        "law": "alpha=2.2",
        "params": {"alpha": 2.2, "l": 24},
        "trials": 0,
        "status": "quarantined",
    }
    _record(registry, estimates=[empty])
    found = registry.lookup(law="alpha=2.2", geometry={"l": 24}, max_ci=0.01)
    assert found is not None and found.run_id == tight.run_id
    # Without the CI requirement the freshest *non-empty* record wins,
    # and an unmatched geometry or law returns nothing.
    assert registry.lookup(law="alpha=2.2").run_id == tight.run_id
    assert registry.lookup(law="alpha=2.2", geometry={"l": 999}) is None
    assert registry.lookup(law="alpha=9") is None
    assert registry.lookup(law="alpha=2.2", max_ci=0.001) is None
    assert wide.run_id != tight.run_id


# ------------------------------------------------------------- drift detection


def test_compare_flags_disjoint_intervals_as_drift():
    a = [_estimate(p=0.05, half=0.01)]
    b = [_estimate(p=0.09, half=0.01)]  # [0.08, 0.10] vs [0.04, 0.06]: disjoint
    (delta,) = compare_estimates(a, b)
    assert delta.verdict == "drift"
    assert "disjoint" in delta.detail


def test_compare_warns_on_shrunken_overlap_and_accepts_stability():
    a = [_estimate(p=0.05, half=0.01)]
    warn = [_estimate(p=0.0655, half=0.01)]  # overlap 0.0045/0.02 < 1/2
    ok = [_estimate(p=0.051, half=0.01)]
    (delta,) = compare_estimates(a, warn)
    assert delta.verdict == "warn"
    (delta,) = compare_estimates(a, ok)
    assert delta.verdict == "ok"
    assert 0 < OVERLAP_WARN_FRACTION < 1


def test_compare_reports_one_sided_points_as_coverage_not_drift():
    a = [_estimate(key="alpha=2.2 l=24")]
    b = [_estimate(key="alpha=2.8 l=24")]
    deltas = compare_estimates(a, b)
    assert [d.verdict for d in deltas] == ["n/a", "n/a"]
    assert {d.detail for d in deltas} == {"only in A", "only in B"}


def test_compare_records_renders_drift_and_config_warning():
    a = build_run_record(
        command="sweep", config={"seed": 0}, estimates=[_estimate(p=0.05, half=0.01)]
    )
    b = build_run_record(
        command="sweep", config={"seed": 1}, estimates=[_estimate(p=0.09, half=0.01)]
    )
    text, drifted, warned = compare_records(a, b)
    assert drifted == ["alpha=2.2 l=24"]
    assert warned == []
    assert "DRIFT" in text
    assert "config hashes differ" in text


# -------------------------------------------------------------------- the CLI


def _sweep_args(tmp_path, seed=0, extra=()):
    return [
        "sweep",
        "--alpha", "2.2",
        "--l", "8",
        "--n-walks", "400",
        "--seed", str(seed),
        "--label", "regtest",
        "--registry-dir", str(tmp_path / "registry"),
        *extra,
    ]


def test_sweep_auto_registers_and_artifacts_join_on_run_id(tmp_path, capsys):
    log = tmp_path / "events.jsonl"
    metrics = tmp_path / "metrics.json"
    code = main(
        _sweep_args(
            tmp_path,
            extra=["--log-json", str(log), "--metrics-out", str(metrics)],
        )
    )
    capsys.readouterr()
    assert code == EXIT_OK
    (record,) = RunRegistry(tmp_path / "registry").records(strict=True)
    assert record.command == "sweep"
    assert record.outcome == "ok"
    assert record.estimates and record.estimates[0]["trials"] == 400
    assert record.walltime_seconds is not None

    # satellite: the event log's log_open header and the metrics
    # snapshot's _meta entry both carry the registry record's run_id.
    from repro.telemetry.events import read_events

    header = read_events(log)[0]
    assert header["type"] == "log_open"
    assert header["run_id"] == record.run_id
    assert header["created_at"]
    snapshot = json.loads(metrics.read_text())
    assert snapshot["_meta"]["run_id"] == record.run_id


def test_sweep_no_registry_opts_out(tmp_path, capsys):
    code = main(_sweep_args(tmp_path, extra=["--no-registry"]))
    capsys.readouterr()
    assert code == EXIT_OK
    assert not (tmp_path / "registry").exists()


def test_runs_list_show_compare_gc_cli(tmp_path, capsys):
    registry_dir = str(tmp_path / "registry")
    for seed in (0, 1):
        assert main(_sweep_args(tmp_path, seed=seed)) == EXIT_OK
    capsys.readouterr()

    assert main(["runs", "list", "--registry-dir", registry_dir]) == EXIT_OK
    out = capsys.readouterr().out
    assert "2 record(s)" in out
    assert "sweep" in out

    assert main(["runs", "show", "last", "--registry-dir", registry_dir]) == EXIT_OK
    out = capsys.readouterr().out
    assert "headline estimates" in out
    assert "alpha=2.2" in out

    code = main(["runs", "compare", "prev", "last", "--registry-dir", registry_dir])
    out = capsys.readouterr().out
    assert code == EXIT_OK  # non-strict compare never gates
    assert "estimate drift" in out
    assert "config hashes differ" in out  # seeds differ

    code = main(
        ["runs", "gc", "--keep", "1", "--dry-run", "--registry-dir", registry_dir]
    )
    out = capsys.readouterr().out
    assert code == EXIT_OK
    assert "would drop 1 record(s), kept 1" in out
    assert len(RunRegistry(registry_dir).records()) == 2


def test_runs_show_unknown_token_is_usage_error(tmp_path, capsys):
    registry_dir = tmp_path / "registry"
    RunRegistry(registry_dir).register(build_run_record(command="sweep"))
    code = main(["runs", "show", "bogus", "--registry-dir", str(registry_dir)])
    err = capsys.readouterr().err
    assert code == EXIT_USAGE
    assert "no run matching" in err


def test_runs_compare_strict_fails_on_injected_disjoint_shift(tmp_path, capsys):
    """Acceptance: --strict exits non-zero on a disjoint-CI shift."""
    registry_dir = str(tmp_path / "registry")
    assert main(_sweep_args(tmp_path)) == EXIT_OK
    capsys.readouterr()
    registry = RunRegistry(registry_dir)
    baseline = registry.records()[-1]
    # Inject a statistically shifted twin: same keys, intervals moved
    # far enough that every Wilson CI is disjoint from the baseline's.
    shifted = [
        {**dict(e), "p": e["high"] + 0.2, "low": e["high"] + 0.1, "high": e["high"] + 0.3}
        for e in baseline.estimates
    ]
    registry.register(build_run_record(command="sweep", estimates=shifted))

    strict = ["runs", "compare", "prev", "last", "--strict",
              "--registry-dir", registry_dir]
    assert main(strict) == EXIT_FAILED
    out = capsys.readouterr().out
    assert "DRIFT" in out
    # The same comparison without --strict reports but does not gate.
    assert main(strict[:-3] + ["--registry-dir", registry_dir]) == EXIT_OK
    capsys.readouterr()


def test_bench_history_from_registry_renders_trends(tmp_path, capsys):
    registry_dir = str(tmp_path / "registry")
    registry = RunRegistry(registry_dir)
    for p in (0.05, 0.06, 0.07):
        registry.register(
            build_run_record(
                command="sweep",
                estimates=[_estimate(p=p)],
                walltime_seconds=1.0 + p,
            )
        )
    code = main(["bench-history", "--from-registry", "--registry-dir", registry_dir])
    out = capsys.readouterr().out
    assert code == EXIT_OK
    assert "walltime_seconds" in out
    assert "p[alpha=2.2 l=24]" in out


def test_bench_history_without_snapshots_or_registry_flag_is_usage_error(capsys):
    assert main(["bench-history"]) == EXIT_USAGE
    capsys.readouterr()
