"""Tests for occupation statistics (visit counts, grids, snapshots)."""

import numpy as np
import pytest

from repro.distributions.unit import ConstantJumpDistribution, UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.visits import (
    flight_occupation_grid,
    flight_positions_after,
    flight_visit_counts,
    walk_displacement_snapshots,
)


def test_visit_counts_shape_and_range(rng):
    counts = flight_visit_counts(
        ZetaJumpDistribution(2.5), [(0, 0), (1, 0)], horizon=10, n=500, rng=rng
    )
    assert counts.shape == (2,)
    assert np.all(counts >= 0)
    assert np.all(counts <= 10)


def test_visit_counts_validation(rng):
    with pytest.raises(ValueError):
        flight_visit_counts(ZetaJumpDistribution(2.5), [(0, 0, 0)], horizon=5, n=10, rng=rng)


def test_visit_counts_lazy_origin(rng):
    """A fully lazy-ish law: constant jump 1 never revisits... instead use
    the exact one-jump case: after 1 jump, P(at origin) = 1/2 (lazy)."""
    counts = flight_visit_counts(
        ZetaJumpDistribution(2.5), [(0, 0)], horizon=1, n=20_000, rng=rng
    )
    assert abs(counts[0] - 0.5) < 0.02


def test_occupation_grid_mass(rng):
    grid = flight_occupation_grid(
        ZetaJumpDistribution(2.5), horizon=3, n=5_000, radius=30, rng=rng
    )
    assert grid.shape == (61, 61)
    # Total mass = expected visits inside the box <= n_jumps.
    assert 0 < grid.sum() <= 3.0 + 1e-9


def test_occupation_grid_at_time_only(rng):
    grid = flight_occupation_grid(
        ZetaJumpDistribution(2.5),
        horizon=4,
        n=5_000,
        radius=40,
        rng=rng,
        at_time_only=True,
    )
    # Now it is a (sub-)probability distribution of J_4.
    assert grid.sum() <= 1.0 + 1e-9
    assert grid.sum() > 0.5  # most mass stays well inside radius 40


def test_positions_after_shape(rng):
    pos = flight_positions_after(ZetaJumpDistribution(2.5), horizon=5, n=100, rng=rng)
    assert pos.shape == (100, 2)
    assert pos.dtype == np.int64


def test_positions_after_zero_jumps(rng):
    pos = flight_positions_after(ZetaJumpDistribution(2.5), horizon=0, n=10, rng=rng)
    np.testing.assert_array_equal(pos, np.zeros((10, 2)))


# --------------------------------------------------------------- snapshots


def test_snapshots_shape_and_zero(rng):
    snaps = walk_displacement_snapshots(
        ZetaJumpDistribution(2.5), [0, 4, 16], n=200, rng=rng
    )
    assert snaps.shape == (3, 200, 2)
    np.testing.assert_array_equal(snaps[0], np.zeros((200, 2)))


def test_snapshots_exact_displacement_unit_law(rng):
    """Non-lazy unit jumps: after t steps the L1 displacement has the
    parity of t and is at most t."""
    snaps = walk_displacement_snapshots(
        ConstantJumpDistribution(1), [5, 10], n=800, rng=rng
    )
    for index, t in enumerate((5, 10)):
        l1 = np.abs(snaps[index, :, 0]) + np.abs(snaps[index, :, 1])
        assert np.all(l1 <= t)
        assert np.all(l1 % 2 == t % 2)


def test_snapshots_ballistic_exact(rng):
    """A constant-100 jump law is mid-first-jump at step 7: displacement
    exactly 7."""
    snaps = walk_displacement_snapshots(
        ConstantJumpDistribution(100), [7], n=500, rng=rng
    )
    l1 = np.abs(snaps[0, :, 0]) + np.abs(snaps[0, :, 1])
    np.testing.assert_array_equal(l1, np.full(500, 7))


def test_snapshots_unsorted_input(rng):
    snaps = walk_displacement_snapshots(
        UnitJumpDistribution(), [16, 4, 8], n=100, rng=rng
    )
    # Returned in sorted order; displacement grows stochastically.
    l1 = np.abs(snaps[:, :, 0]) + np.abs(snaps[:, :, 1])
    assert l1[0].mean() <= l1[2].mean()


def test_snapshots_negative_rejected(rng):
    with pytest.raises(ValueError):
        walk_displacement_snapshots(UnitJumpDistribution(), [-1], n=10, rng=rng)


def test_snapshots_lazy_walk_slower_than_nonlazy(rng):
    lazy = walk_displacement_snapshots(UnitJumpDistribution(0.5), [64], n=2_000, rng=rng)
    brisk = walk_displacement_snapshots(ConstantJumpDistribution(1), [64], n=2_000, rng=rng)
    lazy_l1 = (np.abs(lazy[0]).sum(axis=1)).mean()
    brisk_l1 = (np.abs(brisk[0]).sum(axis=1)).mean()
    assert lazy_l1 < brisk_l1


def test_snapshots_match_object_level_walk(rng):
    """Cross-validation: the snapshot engine's marginal displacement law
    at a fixed step must match full object-level Levy walks."""
    from repro.walks import LevyWalk
    from repro.rng import spawn

    alpha, step = 2.5, 48
    snaps = walk_displacement_snapshots(
        ZetaJumpDistribution(alpha), [step], n=4_000, rng=rng
    )
    engine_l1 = np.abs(snaps[0, :, 0]) + np.abs(snaps[0, :, 1])
    reference_l1 = []
    for child in spawn(rng, 600):
        walk = LevyWalk(alpha, rng=child)
        walk.run(step)
        reference_l1.append(abs(walk.position[0]) + abs(walk.position[1]))
    reference_l1 = np.asarray(reference_l1)
    # Compare medians and the (robust) 25/75 quantiles.
    for q in (0.25, 0.5, 0.75):
        a = float(np.quantile(engine_l1, q))
        b = float(np.quantile(reference_l1, q))
        assert abs(a - b) <= max(3.0, 0.3 * b), (q, a, b)
