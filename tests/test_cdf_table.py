"""Tests for the cached inverse-CDF jump tables (``repro.distributions.cdf_table``).

The table path must be *statistically* equivalent to the legacy samplers
(``rejection_conditional_zipf`` / ``bisection_conditional_zipf``) -- the
seed-to-sample mapping changed once, documented in docs/performance.md,
but the law did not.  These tests pin the law (chi-square on the head of
the PMF, exact tail handling past the table), the per-walk heterogeneous
bulk path, and the process-global cache (hit/miss counters, bounded
size, cross-process reuse through a pooled Runner run).
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.distributions import cdf_table
from repro.distributions.cdf_table import (
    MAX_TABLE_ENTRIES,
    JumpCdfTable,
    cache_stats,
    clear_cache,
    get_table,
    legacy_sampling,
    required_length,
    set_cache_limit,
)
from repro.distributions.zeta import ZetaJumpDistribution
from repro.distributions.zipf_sampler import (
    bisection_conditional_zipf,
    rejection_conditional_zipf,
)
from repro.engine.samplers import HeterogeneousZetaSampler
from repro.runner import HittingTimeTask, Job, Runner

ALPHA = 2.5
N = 200_000


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test sees an empty process-global table cache."""
    clear_cache()
    set_cache_limit(cdf_table.CACHE_MAX_TABLES)
    yield
    clear_cache()
    set_cache_limit(cdf_table.CACHE_MAX_TABLES)


def _head_chi_square(observed, expected_pmf, n, n_bins=12):
    """Chi-square statistic of ``observed`` draws against ``expected_pmf``."""
    counts = np.bincount(observed, minlength=n_bins + 1)[1 : n_bins + 1]
    expected = expected_pmf[:n_bins] * n
    # Lump everything past the head into one tail bin.
    tail_obs = n - counts.sum()
    tail_exp = n - expected.sum()
    obs = np.append(counts, tail_obs)
    exp = np.append(expected, tail_exp)
    return float(((obs - exp) ** 2 / exp).sum()), n_bins  # df = bins


def _conditional_zipf_pmf(alpha, k):
    from scipy.special import zeta as hurwitz

    i = np.arange(1, k + 1, dtype=np.float64)
    return i ** -alpha / hurwitz(alpha, 1.0)


# ------------------------------------------------------------------ the law


def test_table_matches_rejection_sampler_law():
    """Table draws and rejection draws agree with the conditional Zipf PMF."""
    table = get_table(ALPHA, lazy_probability=0.0)
    assert table is not None
    rng = np.random.default_rng(1)
    via_table = table.sample(rng, N)
    via_rejection = rejection_conditional_zipf(ALPHA, np.random.default_rng(2), N)
    pmf = _conditional_zipf_pmf(ALPHA, 12)
    for draws in (via_table, via_rejection):
        stat, df = _head_chi_square(np.minimum(draws, 13), pmf, N)
        assert stat < sps.chi2.ppf(0.999, df)
    # Matching clipped means across the two samplers (the raw mean has
    # infinite variance for alpha <= 3).
    assert np.isclose(
        np.minimum(via_table, 50).mean(), np.minimum(via_rejection, 50).mean(),
        rtol=0.02,
    )


def test_table_matches_bisection_sampler_law():
    """Table draws agree with inverse-CDF bisection draws of the same law."""
    table = get_table(ALPHA, lazy_probability=0.0)
    via_table = table.sample(np.random.default_rng(3), N)
    via_bisection = bisection_conditional_zipf(ALPHA, np.random.default_rng(4), N)
    pmf = _conditional_zipf_pmf(ALPHA, 12)
    stat, df = _head_chi_square(np.minimum(via_bisection, 13), pmf, N)
    assert stat < sps.chi2.ppf(0.999, df)
    assert np.isclose(
        np.minimum(via_table, 50).mean(), np.minimum(via_bisection, 50).mean(),
        rtol=0.02,
    )


def test_capped_table_matches_legacy_capped_law():
    """A capped table reproduces the truncated law the bisection path draws."""
    cap = 64
    table = get_table(ALPHA, lazy_probability=0.0, cap=cap)
    assert table is not None and table.length == cap
    via_table = table.sample(np.random.default_rng(3), N)
    assert via_table.max() <= cap and via_table.min() >= 1
    law = ZetaJumpDistribution(ALPHA, lazy_probability=0.0, cap=cap)
    with legacy_sampling():
        via_bisection = law.sample(np.random.default_rng(4), N)
    i = np.arange(1, cap + 1, dtype=np.float64)
    pmf = i ** -ALPHA / (i ** -ALPHA).sum()
    for draws in (via_table, via_bisection):
        stat, df = _head_chi_square(draws, pmf, N, n_bins=12)
        assert stat < sps.chi2.ppf(0.999, df)


def test_lazy_split_and_fused_uniforms():
    """P(d=0) == lazy_probability, and caller-supplied uniforms are honoured."""
    table = get_table(ALPHA, lazy_probability=0.5)
    rng = np.random.default_rng(5)
    draws = table.sample(rng, N)
    p_zero = (draws == 0).mean()
    assert abs(p_zero - 0.5) < 3 * np.sqrt(0.25 / N) * 2
    # A caller-supplied u below the lazy split is a forced rest step; just
    # above it is a forced jump of 1 (the CDF's first bucket).
    u = np.array([0.25, 0.5 + 1e-12])
    out = np.empty(2, dtype=np.int64)
    result = table.sample(np.random.default_rng(0), 2, u=u, out=out)
    assert result is out
    assert out[0] == 0 and out[1] == 1


def test_tail_fallback_is_exact():
    """Draws past the table land in the tail with the law's tail mass."""
    # A deliberately short table forces the fallback often enough to test.
    table = JumpCdfTable(ALPHA, lazy_probability=0.0, cap=None, length=32)
    rng = np.random.default_rng(6)
    draws = table.sample(rng, N)
    in_tail = draws > 32
    from scipy.special import zeta as hurwitz

    tail_mass = hurwitz(ALPHA, 33.0) / hurwitz(ALPHA, 1.0)
    assert abs(in_tail.mean() - tail_mass) < 5 * np.sqrt(tail_mass / N)
    # Conditional on the tail, the law is Zipf restricted to > 32: compare
    # the first tail bucket's conditional frequency.
    tail_draws = draws[in_tail]
    p33 = (33.0 ** -ALPHA / hurwitz(ALPHA, 1.0)) / tail_mass
    assert abs((tail_draws == 33).mean() - p33) < 0.05
    # The production tables keep the uncovered mass below TAIL_MASS.
    full = get_table(ALPHA, lazy_probability=0.0)
    assert 1.0 - full.top <= cdf_table.TAIL_MASS


def test_required_length_exact_and_bounded():
    assert required_length(2.5) == get_table(2.5, 0.0).length
    # alpha = 2.0 fits (barely); alpha close to 1 does not.
    assert required_length(2.0) <= MAX_TABLE_ENTRIES
    assert required_length(1.2) == MAX_TABLE_ENTRIES + 1
    assert get_table(1.2) is None  # untabulated -> legacy sampling


# ------------------------------------------------- heterogeneous exponents


def test_heterogeneous_sampler_law_per_walk():
    """The bulk-CDF path gives each walk its own exponent's law."""
    n_walks = 4
    alphas = np.array([2.1, 2.5, 3.0, 3.5])
    sampler = HeterogeneousZetaSampler(alphas, lazy_probability=0.0)
    rng = np.random.default_rng(7)
    reps = 50_000
    walk_indices = np.repeat(np.arange(n_walks), reps)
    draws = sampler.sample(rng, walk_indices)
    for w, alpha in enumerate(alphas):
        mine = draws[walk_indices == w]
        pmf = _conditional_zipf_pmf(alpha, 12)
        stat, df = _head_chi_square(np.minimum(mine, 13), pmf, reps)
        assert stat < sps.chi2.ppf(0.999, df), f"alpha={alpha}"
    # The same sampler under legacy_sampling() draws the same law.  Raw
    # means are useless for alpha near 2 (infinite variance), so compare
    # clipped means where the estimator concentrates.
    with legacy_sampling():
        legacy = sampler.sample(np.random.default_rng(8), walk_indices)
    for w in range(n_walks):
        a = np.minimum(draws[walk_indices == w], 50).mean()
        b = np.minimum(legacy[walk_indices == w], 50).mean()
        assert np.isclose(a, b, rtol=0.05)


# ------------------------------------------------------------------- cache


def test_cache_hit_miss_counters():
    stats = cache_stats()
    assert stats["tables"] == 0 and stats["hits"] == 0
    get_table(2.5, 0.5)
    get_table(2.5, 0.5)
    get_table(2.7, 0.5)
    stats = cache_stats()
    assert stats["misses"] == 2  # 2.5 built once, 2.7 built once
    assert stats["hits"] == 1
    assert stats["tables"] == 2
    assert stats["entries"] > 0 and stats["bytes"] > 0


def test_cache_negative_results_are_cached():
    assert get_table(1.5) is None
    assert get_table(1.5) is None
    stats = cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_cache_is_bounded_with_evictions():
    set_cache_limit(2)
    get_table(2.3, 0.0, cap=16)
    get_table(2.4, 0.0, cap=16)
    get_table(2.6, 0.0, cap=16)
    stats = cache_stats()
    assert stats["tables"] == 2
    assert stats["evictions"] == 1
    # LRU: 2.3 was evicted, 2.4 and 2.6 still hit.
    get_table(2.6, 0.0, cap=16)
    assert cache_stats()["hits"] == 1
    get_table(2.3, 0.0, cap=16)  # rebuild
    assert cache_stats()["misses"] == 4


def test_legacy_sampling_context_disables_tables():
    assert get_table(2.5) is not None
    with legacy_sampling():
        assert get_table(2.5) is None
        assert not cdf_table.table_sampling_enabled()
    assert cdf_table.table_sampling_enabled()
    assert get_table(2.5) is not None


def test_zeta_distribution_agrees_with_legacy_law():
    """End-to-end: ZetaJumpDistribution via tables vs via legacy samplers."""
    law = ZetaJumpDistribution(ALPHA)
    fused = law.sample(np.random.default_rng(9), N)
    with legacy_sampling():
        legacy = law.sample(np.random.default_rng(10), N)
    clipped_f = np.minimum(fused, 50)
    clipped_l = np.minimum(legacy, 50)
    assert np.isclose((fused == 0).mean(), (legacy == 0).mean(), atol=0.01)
    assert np.isclose(clipped_f.mean(), clipped_l.mean(), rtol=0.03)


# ------------------------------------------- cross-process reuse via Runner


def test_pooled_runner_reuses_tables_and_stays_deterministic(tmp_path):
    """A pooled run (workers rebuild the table per process) is bit-identical
    to a serial run, and kill-free resume invariance is preserved."""
    task = HittingTimeTask(
        jumps=ZetaJumpDistribution(2.5), target=(5, 3), horizon=150
    )
    job = Job(task=task, n_total=400, seed=42, label="cdf")
    serial = Runner(n_chunks=4, workers=0).run_many([job])[0].payload
    pooled = Runner(n_chunks=4, workers=2).run_many([job])[0].payload
    np.testing.assert_array_equal(serial.times, pooled.times)
    # The parent process built (or will build) its own cached table; the
    # law used by workers matches it because the cache key is pure
    # (alpha, lazy_probability, cap).
    get_table(2.5, 0.5)
    assert cache_stats()["tables"] >= 1
