"""Tests for result persistence and sequential estimation."""

import numpy as np
import pytest

from repro.analysis.sequential import (
    estimate_probability_sequential,
    required_trials,
)
from repro.engine.multi_target import ForagingResult
from repro.engine.results import CENSORED, HittingTimeSample
from repro.io_utils import (
    CorruptResultError,
    atomic_write_bytes,
    load_foraging_result,
    load_hitting_sample,
    load_metadata,
    save_foraging_result,
    save_hitting_sample,
    save_metadata,
    sha256_hex,
)


# -------------------------------------------------------------- persistence


def test_hitting_sample_roundtrip(tmp_path):
    sample = HittingTimeSample(
        times=np.array([3, CENSORED, 9, 0], dtype=np.int64), horizon=20
    )
    path = tmp_path / "sample.npz"
    save_hitting_sample(sample, path)
    loaded = load_hitting_sample(path)
    np.testing.assert_array_equal(loaded.times, sample.times)
    assert loaded.horizon == 20
    assert loaded.hit_fraction == sample.hit_fraction


def test_foraging_result_roundtrip(tmp_path):
    result = ForagingResult(
        targets=np.array([[1, 2], [3, -4]], dtype=np.int64),
        discovery_times=np.array([5, CENSORED], dtype=np.int64),
        discoverer=np.array([2, -1], dtype=np.int64),
        horizon=100,
    )
    path = tmp_path / "forage.npz"
    save_foraging_result(result, path)
    loaded = load_foraging_result(path)
    np.testing.assert_array_equal(loaded.targets, result.targets)
    np.testing.assert_array_equal(loaded.discovery_times, result.discovery_times)
    np.testing.assert_array_equal(loaded.discoverer, result.discoverer)
    assert loaded.horizon == 100
    assert loaded.n_collected == 1


def test_kind_mismatch_rejected(tmp_path):
    sample = HittingTimeSample(times=np.array([1], dtype=np.int64), horizon=5)
    path = tmp_path / "sample.npz"
    save_hitting_sample(sample, path)
    with pytest.raises(ValueError):
        load_foraging_result(path)


def test_metadata_roundtrip(tmp_path):
    metadata = {"seed": 7, "scale": "small", "alphas": [2.0, 2.5]}
    path = tmp_path / "meta.json"
    save_metadata(metadata, path)
    assert load_metadata(path) == metadata


# ------------------------------------------------- corruption and atomicity


def test_truncated_npz_raises_corrupt_result_error(tmp_path):
    sample = HittingTimeSample(times=np.arange(50, dtype=np.int64), horizon=100)
    path = tmp_path / "sample.npz"
    save_hitting_sample(sample, path)
    path.write_bytes(path.read_bytes()[:25])
    with pytest.raises(CorruptResultError):
        load_hitting_sample(path)


def test_garbage_file_raises_corrupt_result_error(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"this is not an npz archive at all")
    with pytest.raises(CorruptResultError):
        load_hitting_sample(path)
    with pytest.raises(CorruptResultError):
        load_foraging_result(path)


def test_garbage_metadata_raises_corrupt_result_error(tmp_path):
    path = tmp_path / "meta.json"
    path.write_text("{broken json")
    with pytest.raises(CorruptResultError):
        load_metadata(path)


def test_corrupt_result_error_is_a_value_error():
    # Legacy callers caught ValueError for kind mismatches; keep that working.
    assert issubclass(CorruptResultError, ValueError)


def test_missing_file_still_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_hitting_sample(tmp_path / "absent.npz")
    with pytest.raises(FileNotFoundError):
        load_metadata(tmp_path / "absent.json")


def test_writers_leave_no_temp_files(tmp_path):
    sample = HittingTimeSample(times=np.array([1, 2], dtype=np.int64), horizon=9)
    save_hitting_sample(sample, tmp_path / "sample.npz")
    save_metadata({"a": 1}, tmp_path / "meta.json")
    atomic_write_bytes(b"payload", tmp_path / "blob.bin")
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == ["blob.bin", "meta.json", "sample.npz"]


def test_atomic_write_replaces_existing_content(tmp_path):
    path = tmp_path / "meta.json"
    save_metadata({"v": 1}, path)
    save_metadata({"v": 2}, path)
    assert load_metadata(path) == {"v": 2}


def test_sha256_hex_is_stable():
    assert sha256_hex(b"abc") == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


# --------------------------------------------------------------- sequential


def test_required_trials_scales_inversely_with_p():
    few = required_trials(0.5, 0.1)
    many = required_trials(0.005, 0.1)
    assert many > 50 * few
    assert required_trials(0.5, 0.05) > required_trials(0.5, 0.2)


def test_required_trials_validation():
    with pytest.raises(ValueError):
        required_trials(0.0, 0.1)
    with pytest.raises(ValueError):
        required_trials(0.5, 0.0)


def test_sequential_estimation_converges(rng):
    p_true = 0.2

    def batch(n):
        return int(rng.binomial(n, p_true))

    outcome = estimate_probability_sequential(
        batch, batch_size=500, relative_half_width=0.15, max_trials=100_000
    )
    assert outcome.converged
    assert outcome.estimate.low <= p_true <= outcome.estimate.high
    assert outcome.trials_used <= 100_000


def test_sequential_estimation_budget_exhausted(rng):
    p_true = 0.001

    def batch(n):
        return int(rng.binomial(n, p_true))

    outcome = estimate_probability_sequential(
        batch, batch_size=200, relative_half_width=0.02, max_trials=2_000
    )
    assert not outcome.converged
    assert outcome.trials_used == 2_000


def test_sequential_adaptivity(rng):
    """Easier problems should stop earlier."""

    def make(p):
        local = np.random.default_rng(0)
        return lambda n: int(local.binomial(n, p))

    easy = estimate_probability_sequential(
        make(0.5), batch_size=200, relative_half_width=0.1, max_trials=300_000
    )
    hard = estimate_probability_sequential(
        make(0.01), batch_size=200, relative_half_width=0.1, max_trials=300_000
    )
    assert easy.converged and hard.converged
    assert easy.trials_used < hard.trials_used


def test_sequential_validation(rng):
    with pytest.raises(ValueError):
        estimate_probability_sequential(lambda n: 0, 0, 0.1, 100)
    with pytest.raises(ValueError):
        estimate_probability_sequential(lambda n: 0, 100, 0.1, 50)
