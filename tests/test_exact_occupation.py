"""Tests for the exact (convolution) occupation law of capped flights."""

import numpy as np
import pytest

from repro.distributions.unit import ConstantJumpDistribution, UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.exact_occupation import (
    ExactOccupation,
    flight_occupation_exact,
    jump_kernel,
)
from repro.engine.visits import flight_occupation_grid, flight_visit_counts


def test_kernel_mass_and_shape():
    law = ZetaJumpDistribution(2.5, cap=5)
    kernel = jump_kernel(law)
    assert kernel.shape == (11, 11)
    assert kernel.sum() == pytest.approx(1.0)
    # Center = lazy mass.
    assert kernel[5, 5] == pytest.approx(0.5)
    # A ring-1 node carries pmf(1)/4.
    assert kernel[6, 5] == pytest.approx(float(law.pmf(1)) / 4.0)


def test_kernel_requires_bounded_law():
    with pytest.raises(ValueError):
        jump_kernel(ZetaJumpDistribution(2.5))  # uncapped


def test_zero_jumps_is_delta():
    occupation = flight_occupation_exact(ZetaJumpDistribution(2.5, cap=3), 0)
    assert occupation.probability_at((0, 0)) == pytest.approx(1.0)
    assert occupation.origin_visits == 0.0


def test_one_jump_matches_kernel():
    law = ZetaJumpDistribution(2.5, cap=4)
    occupation = flight_occupation_exact(law, 1)
    kernel = jump_kernel(law)
    for node in [(0, 0), (1, 0), (2, 2), (-4, 0)]:
        assert occupation.probability_at(node) == pytest.approx(
            kernel[node[0] + 4, node[1] + 4], abs=1e-12
        )


def test_total_mass_preserved():
    occupation = flight_occupation_exact(ZetaJumpDistribution(2.2, cap=6), 4)
    assert occupation.grid.sum() == pytest.approx(1.0)


def test_probability_outside_support_is_zero():
    occupation = flight_occupation_exact(ConstantJumpDistribution(2), 3)
    assert occupation.radius == 6
    assert occupation.probability_at((7, 0)) == 0.0
    assert occupation.probability_at((100, 100)) == 0.0


def test_unit_law_two_steps_exact():
    """Lazy SRW after 1 jump: P(origin) = 1/2, each neighbor 1/8."""
    occupation = flight_occupation_exact(UnitJumpDistribution(), 1)
    assert occupation.probability_at((0, 0)) == pytest.approx(0.5)
    for neighbor in [(1, 0), (-1, 0), (0, 1), (0, -1)]:
        assert occupation.probability_at(neighbor) == pytest.approx(0.125)


def test_origin_visits_match_monte_carlo(rng):
    law = ZetaJumpDistribution(2.5, cap=8)
    t = 6
    exact = flight_occupation_exact(law, t)
    mc = flight_visit_counts(law, [(0, 0)], horizon=t, n=60_000, rng=rng)
    assert abs(exact.origin_visits - float(mc[0])) < 0.03


def test_grid_matches_monte_carlo(rng):
    law = ZetaJumpDistribution(2.5, cap=5)
    t = 4
    exact = flight_occupation_exact(law, t)
    mc = flight_occupation_grid(
        law, horizon=t, n=200_000, radius=6, rng=rng, at_time_only=True
    )
    for node in [(0, 0), (1, 0), (2, 1), (-3, 2)]:
        p_exact = exact.probability_at(node)
        p_mc = float(mc[node[0] + 6, node[1] + 6])
        assert abs(p_exact - p_mc) < 4.5 * (p_exact / 200_000) ** 0.5 + 5e-4


def test_monotonicity_exact_holds():
    occupation = flight_occupation_exact(ZetaJumpDistribution(2.3, cap=6), 5)
    assert occupation.check_monotonicity(max_radius=12) >= -1e-12


def test_monotonicity_violated_by_non_radial_law():
    """Sanity: a hand-made NON-monotone kernel must fail the check --
    proving the check has teeth."""
    grid = np.zeros((9, 9))
    grid[8, 8] = 1.0  # all mass at the far corner (4,4): ||v||_inf = 4
    occupation = ExactOccupation(grid=grid, radius=4, n_jumps=1, origin_visits=0.0)
    assert occupation.check_monotonicity(max_radius=4) < 0


def test_negative_jumps_rejected():
    with pytest.raises(ValueError):
        flight_occupation_exact(ZetaJumpDistribution(2.5, cap=3), -1)


# ------------------------------------------------------- exact first passage


def test_exact_hitting_constant_jump():
    from repro.engine.exact_occupation import flight_hitting_probability_exact

    law = ConstantJumpDistribution(3)
    # One jump: lands uniformly on R_3 (12 nodes) -> P(h <= 1) = 1/12.
    curve = flight_hitting_probability_exact(law, (3, 0), 2)
    assert curve[0] == 0.0
    assert curve[1] == pytest.approx(1.0 / 12.0, abs=1e-9)
    assert curve[2] >= curve[1]


def test_exact_hitting_target_at_origin():
    from repro.engine.exact_occupation import flight_hitting_probability_exact

    law = ZetaJumpDistribution(2.5, cap=3)
    assert flight_hitting_probability_exact(law, (0, 0), 3) == [1.0] * 4


def test_exact_hitting_unreachable():
    from repro.engine.exact_occupation import flight_hitting_probability_exact

    law = ZetaJumpDistribution(2.5, cap=2)
    # Max reach in 2 jumps is 4 < 10.
    assert flight_hitting_probability_exact(law, (10, 0), 2) == [0.0, 0.0, 0.0]


def test_exact_hitting_monotone_and_bounded():
    from repro.engine.exact_occupation import flight_hitting_probability_exact

    law = ZetaJumpDistribution(2.2, cap=6)
    curve = flight_hitting_probability_exact(law, (2, 1), 8)
    assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))
    assert curve[-1] <= 1.0


def test_exact_hitting_matches_monte_carlo(rng):
    from repro.engine.exact_occupation import flight_hitting_probability_exact
    from repro.engine.vectorized import flight_hitting_times

    law = ZetaJumpDistribution(2.5, cap=5)
    target, jumps = (2, 1), 7
    exact = flight_hitting_probability_exact(law, target, jumps)
    mc = flight_hitting_times(law, target, horizon=jumps, n=120_000, rng=rng)
    measured = mc.hit_fraction
    se = (exact[-1] * (1 - exact[-1]) / 120_000) ** 0.5
    assert abs(measured - exact[-1]) < 4.5 * se + 1e-4
    # And the per-step curve matches too.
    for j in (1, 3, 5):
        p_j = mc.probability_by(j)
        se_j = max((exact[j] * (1 - exact[j]) / 120_000) ** 0.5, 1e-5)
        assert abs(p_j - exact[j]) < 5.0 * se_j + 1e-4, j
