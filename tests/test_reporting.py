"""Tests for tables and ASCII plots."""

import pytest

from repro.reporting.table import Table
from repro.reporting.text_plots import ascii_loglog


def test_table_render_alignment():
    table = Table(["name", "value"], title="demo")
    table.add_row("alpha", 2.5)
    table.add_row("longer-name", 0.123456)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # All rows align to the same width.
    assert len(set(len(line) for line in lines[1:])) == 1


def test_table_formats():
    table = Table(["a", "b", "c", "d"])
    table.add_row(None, True, float("nan"), float("inf"))
    rendered = table.render()
    assert "-" in rendered and "yes" in rendered
    assert "nan" in rendered and "inf" in rendered


def test_table_row_length_validation():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)
    with pytest.raises(ValueError):
        Table([])


def test_table_column_extraction():
    table = Table(["x", "y"])
    table.add_row(1, 10)
    table.add_row(2, 20)
    assert table.column("y") == [10, 20]
    with pytest.raises(ValueError):
        table.column("z")


def test_table_csv_roundtrip(tmp_path):
    table = Table(["x", "y"])
    table.add_row(1, 2.5)
    table.add_row(3, None)
    path = tmp_path / "out.csv"
    table.to_csv(path)
    content = path.read_text().strip().splitlines()
    assert content[0] == "x,y"
    assert content[1] == "1,2.5"


def test_ascii_loglog_basic():
    plot = ascii_loglog(
        {"a": [(1, 1), (10, 100)], "b": [(1, 2), (10, 50)]},
        width=30,
        height=8,
        title="demo plot",
    )
    lines = plot.splitlines()
    assert lines[0] == "demo plot"
    assert "o=a" in lines[1] and "x=b" in lines[1]
    assert any("o" in line for line in lines[3:])


def test_ascii_loglog_skips_nonpositive():
    plot = ascii_loglog({"a": [(0, 1), (1, 1), (2, 2)]}, width=10, height=4)
    assert plot  # renders the two positive points


def test_ascii_loglog_empty_rejected():
    with pytest.raises(ValueError):
        ascii_loglog({"a": [(0, 0)]})
