"""Tests for the multi-target foraging engine."""

import numpy as np
import pytest

from repro.distributions.unit import ConstantJumpDistribution, UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.multi_target import (
    ForagingResult,
    multi_target_search,
    scatter_poisson_field,
)
from repro.engine.results import CENSORED
from repro.engine.vectorized import walk_hitting_times


def test_item_at_start_collected_at_zero(rng):
    result = multi_target_search(
        ZetaJumpDistribution(2.5), [(0, 0), (5, 5)], horizon=50, n=3, rng=rng
    )
    assert result.discovery_times[0] == 0
    assert result.discoverer[0] == 0


def test_validation(rng):
    with pytest.raises(ValueError):
        multi_target_search(ZetaJumpDistribution(2.5), [(1, 2, 3)], horizon=10, n=2, rng=rng)
    with pytest.raises(ValueError):
        multi_target_search(ZetaJumpDistribution(2.5), [(1, 2)], horizon=-1, n=2, rng=rng)
    with pytest.raises(ValueError):
        multi_target_search(ZetaJumpDistribution(2.5), [(1, 2)], horizon=10, n=0, rng=rng)


def test_discovery_times_respect_distance(rng):
    targets = [(3, 0), (10, 10), (0, -4)]
    result = multi_target_search(
        ZetaJumpDistribution(2.2), targets, horizon=300, n=16, rng=rng
    )
    distances = [3, 20, 4]
    for time, distance in zip(result.discovery_times, distances):
        if time != CENSORED:
            assert time >= distance


def test_collected_properties(rng):
    result = multi_target_search(
        ZetaJumpDistribution(2.5), [(2, 1), (40, 40)], horizon=30, n=8, rng=rng
    )
    assert result.n_items == 2
    assert result.discovery_times[1] == CENSORED  # unreachable in 30 steps
    assert 0 <= result.n_collected <= 2
    assert result.collected_fraction == result.n_collected / 2


def test_collection_curve_monotone(rng):
    field = scatter_poisson_field(0.05, 12, rng)
    result = multi_target_search(
        ZetaJumpDistribution(2.5), field, horizon=400, n=12, rng=rng
    )
    curve = result.collection_curve([10, 50, 100, 400])
    assert list(curve) == sorted(curve)
    assert curve[-1] == result.n_collected


def test_collections_per_walk_sums(rng):
    field = scatter_poisson_field(0.05, 10, rng)
    result = multi_target_search(
        ZetaJumpDistribution(2.5), field, horizon=300, n=6, rng=rng
    )
    per_walk = result.collections_per_walk(6)
    assert per_walk.sum() == result.n_collected


def test_single_item_matches_single_target_engine(rng):
    """With one item and one walk, the multi-target engine's first-discovery
    law equals the single-target engine's hitting-time law."""
    target = (4, 2)
    horizon = 120
    n = 6_000
    law = ZetaJumpDistribution(2.4)
    multi_times = np.empty(n, dtype=np.int64)
    # Run n single-walk multi-target searches in batches via n=1.
    for i in range(0, n, 1000):
        batch = min(1000, n - i)
        for j in range(batch):
            result = multi_target_search(law, [target], horizon=horizon, n=1, rng=rng)
            multi_times[i + j] = result.discovery_times[0]
    single = walk_hitting_times(law, target, horizon=horizon, n=n, rng=rng)
    p_multi = float((multi_times != CENSORED).mean())
    gap = 4.0 * (p_multi * (1 - p_multi) / n + 0.25 / n) ** 0.5 + 1e-3
    assert abs(p_multi - single.hit_fraction) < gap


def test_multi_walk_first_discovery_is_min(rng):
    """k walks' first discovery of one item == parallel hitting time: check
    it is stochastically earlier than one walk's."""
    target = (6, 3)
    horizon = 200
    law = ZetaJumpDistribution(2.4)
    one = multi_target_search(law, [target] * 1, horizon=horizon, n=1, rng=rng)
    many_found = 0
    one_found = 0
    trials = 300
    for _ in range(trials):
        many = multi_target_search(law, [target], horizon=horizon, n=16, rng=rng)
        many_found += int(many.discovery_times[0] != CENSORED)
        solo = multi_target_search(law, [target], horizon=horizon, n=1, rng=rng)
        one_found += int(solo.discovery_times[0] != CENSORED)
    assert many_found > one_found
    del one


def test_same_ring_items_share_crossing(rng):
    """Two items on the same ring of a length-6 jump cannot both be hit in
    one phase; with a constant-6 law from the origin and horizon 6, the
    total hits over both items per run is at most 1."""
    law = ConstantJumpDistribution(6)
    items = [(3, 0), (0, 3)]  # both on ring 3
    both = 0
    for _ in range(400):
        result = multi_target_search(law, items, horizon=6, n=1, rng=rng)
        found = result.discovery_times != CENSORED
        if found.all():
            both += 1
    assert both == 0


def test_unit_law_walk(rng):
    result = multi_target_search(
        UnitJumpDistribution(), [(1, 0), (0, 1)], horizon=40, n=4, rng=rng
    )
    assert result.n_collected >= 1


# ------------------------------------------------------------ field helper


def test_scatter_poisson_field_density(rng):
    field = scatter_poisson_field(0.5, 20, rng)
    # |B_20| - 1 = 840 candidate nodes; expect ~420 items.
    assert 320 <= field.shape[0] <= 520
    l1 = np.abs(field[:, 0]) + np.abs(field[:, 1])
    assert l1.max() <= 20
    assert l1.min() >= 1  # origin excluded


def test_scatter_poisson_field_origin_inclusion(rng):
    field = scatter_poisson_field(1.0, 3, rng, exclude_origin=False)
    assert field.shape[0] == 25  # |B_3| with density 1
    field2 = scatter_poisson_field(1.0, 3, rng)
    assert field2.shape[0] == 24


def test_scatter_poisson_field_validation(rng):
    with pytest.raises(ValueError):
        scatter_poisson_field(0.0, 5, rng)
    with pytest.raises(ValueError):
        scatter_poisson_field(0.5, 0, rng)


def test_foraging_result_dataclass():
    result = ForagingResult(
        targets=np.array([[1, 0]]),
        discovery_times=np.array([CENSORED]),
        discoverer=np.array([-1]),
        horizon=10,
    )
    assert result.n_collected == 0
    assert result.collected_fraction == 0.0
