"""Tests for the square-spiral ordering used by the spiral-search baseline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice.points import l1_distance, linf_norm
from repro.lattice.spiral import (
    spiral_index,
    spiral_offset,
    spiral_path,
    steps_to_cover_box,
)


def test_spiral_start():
    assert spiral_offset(0) == (0, 0)
    assert spiral_index((0, 0)) == 0


def test_spiral_first_ring():
    expected = [(1, 0), (1, 1), (0, 1), (-1, 1), (-1, 0), (-1, -1), (0, -1), (1, -1)]
    assert [spiral_offset(i) for i in range(1, 9)] == expected


def test_spiral_roundtrip_dense():
    for index in range(5_000):
        assert spiral_index(spiral_offset(index)) == index


def test_spiral_is_bijective_on_prefix():
    n = 2_000
    offsets = [spiral_offset(i) for i in range(n)]
    assert len(set(offsets)) == n


def test_spiral_path_is_connected():
    path = spiral_path(1_500)
    for a, b in zip(path, path[1:]):
        assert l1_distance(a, b) == 1


def test_spiral_covers_boxes_in_order():
    """Index < (2r+1)^2 iff the offset lies in Q_r."""
    for r in (1, 2, 3, 5):
        boundary = (2 * r + 1) ** 2
        inside = {spiral_offset(i) for i in range(boundary)}
        assert all(linf_norm(o) <= r for o in inside)
        assert len(inside) == boundary
        assert linf_norm(spiral_offset(boundary)) == r + 1


def test_steps_to_cover_box():
    assert steps_to_cover_box(0) == 0
    assert steps_to_cover_box(1) == 8
    assert steps_to_cover_box(3) == 48
    with pytest.raises(ValueError):
        steps_to_cover_box(-1)


def test_spiral_negative_index():
    with pytest.raises(ValueError):
        spiral_offset(-1)


@given(st.integers(min_value=0, max_value=10**12))
def test_spiral_roundtrip_large(index):
    assert spiral_index(spiral_offset(index)) == index


@given(st.tuples(st.integers(-2000, 2000), st.integers(-2000, 2000)))
def test_spiral_roundtrip_from_offset(offset):
    assert spiral_offset(spiral_index(offset)) == offset


def test_spiral_path_centered():
    path = spiral_path(9, center=(10, -7))
    assert path[0] == (10, -7)
    assert all(linf_norm((x - 10, y + 7)) <= 1 for x, y in path)
