"""Tests for the paper's power-law jump distribution (Eq. 3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import special

from repro.distributions.zeta import (
    ZetaJumpDistribution,
    _partial_power_sum,
    cauchy_jump_distribution,
)

alphas = st.floats(min_value=1.2, max_value=5.0, allow_nan=False)


# ------------------------------------------------------------ construction


def test_rejects_alpha_at_most_one():
    with pytest.raises(ValueError):
        ZetaJumpDistribution(1.0)
    with pytest.raises(ValueError):
        ZetaJumpDistribution(0.5)


def test_rejects_bad_lazy_probability():
    with pytest.raises(ValueError):
        ZetaJumpDistribution(2.5, lazy_probability=1.0)
    with pytest.raises(ValueError):
        ZetaJumpDistribution(2.5, lazy_probability=-0.1)


def test_rejects_bad_cap():
    with pytest.raises(ValueError):
        ZetaJumpDistribution(2.5, cap=0)


def test_c_alpha_normalizer():
    # c_alpha = 1 / (2 zeta(alpha)) for the paper's lazy probability 1/2.
    law = ZetaJumpDistribution(2.5)
    assert law.c_alpha == pytest.approx(0.5 / special.zeta(2.5, 1))


def test_cauchy_factory():
    assert cauchy_jump_distribution().alpha == 2.0


# -------------------------------------------------------------------- law


@given(alphas)
@settings(max_examples=30)
def test_pmf_sums_to_one(alpha):
    law = ZetaJumpDistribution(alpha)
    grid = np.arange(0, 30_000)
    total = float(np.sum(law.pmf(grid))) + float(law.tail(30_000))
    assert total == pytest.approx(1.0, abs=1e-9)


def test_pmf_values():
    law = ZetaJumpDistribution(2.0)
    assert law.pmf(0) == pytest.approx(0.5)
    assert law.pmf(1) == pytest.approx(law.c_alpha)
    assert law.pmf(4) == pytest.approx(law.c_alpha / 16)
    assert law.pmf(-3) == 0.0


def test_tail_consistency_with_pmf():
    law = ZetaJumpDistribution(2.7)
    for i in (1, 2, 5, 17):
        assert law.tail(i) - law.tail(i + 1) == pytest.approx(float(law.pmf(i)))


def test_tail_at_zero_is_one():
    law = ZetaJumpDistribution(3.2)
    assert law.tail(0) == pytest.approx(1.0)
    assert law.tail(-5) == pytest.approx(1.0)


def test_cdf_complements_tail():
    law = ZetaJumpDistribution(2.2)
    for i in (0, 1, 3, 10):
        assert law.cdf(i) == pytest.approx(1.0 - float(law.tail(i + 1)))


def test_tail_theta_bound_eq4():
    """Eq. (4): P(d >= i) * i^(alpha-1) stays within constant factors."""
    for alpha in (1.5, 2.0, 2.5, 3.5):
        law = ZetaJumpDistribution(alpha)
        ratios = [float(law.tail(i)) * i ** (alpha - 1.0) for i in (10, 100, 1000)]
        assert max(ratios) / min(ratios) < 1.6


# ------------------------------------------------------------------ capped


def test_capped_support():
    law = ZetaJumpDistribution(2.5, cap=7)
    assert law.support_max == 7
    assert float(law.pmf(8)) == 0.0
    assert float(law.tail(8)) == pytest.approx(0.0, abs=1e-12)
    grid = np.arange(0, 8)
    assert float(np.sum(law.pmf(grid))) == pytest.approx(1.0)


def test_capped_factory_and_lemma_cap():
    law = ZetaJumpDistribution(2.5)
    capped = law.capped(100)
    assert capped.cap == 100 and capped.alpha == 2.5
    cap = law.lemma_4_5_cap(1000)
    assert cap == int((1000 * math.log(1000)) ** (1.0 / 1.5))
    with pytest.raises(ValueError):
        law.lemma_4_5_cap(1)


def test_capped_renormalization():
    law = ZetaJumpDistribution(2.5)
    capped = law.capped(10)
    # P(d = i | d <= 10) = pmf(i) / P(d <= 10) for i in 1..10.
    scale = float(law.cdf(10))
    for i in (1, 5, 10):
        expected = float(law.pmf(i)) / scale
        # The lazy mass is also renormalized jointly; check the ratio
        # structure instead: pmf_c(i)/pmf_c(j) == pmf(i)/pmf(j).
        assert float(capped.pmf(i)) / float(capped.pmf(1)) == pytest.approx(
            float(law.pmf(i)) / float(law.pmf(1))
        )
    del expected


# ----------------------------------------------------------------- moments


def test_mean_divergence_boundary():
    assert math.isinf(ZetaJumpDistribution(2.0).mean)
    assert math.isinf(ZetaJumpDistribution(1.5).mean)
    assert ZetaJumpDistribution(2.5).mean < math.inf


def test_second_moment_divergence_boundary():
    assert math.isinf(ZetaJumpDistribution(3.0).second_moment)
    assert ZetaJumpDistribution(3.5).second_moment < math.inf
    assert math.isinf(ZetaJumpDistribution(3.0).variance)


def test_mean_value():
    law = ZetaJumpDistribution(3.0)
    # E[d] = c_3 * zeta(2).
    assert law.mean == pytest.approx(law.c_alpha * special.zeta(2.0, 1))


def test_capped_moments_match_direct_sum():
    law = ZetaJumpDistribution(1.7, cap=500)
    i = np.arange(1, 501, dtype=float)
    weights = law.c_alpha * i**-1.7
    assert law.mean == pytest.approx(float(np.sum(i * weights)), rel=1e-9)
    assert law.second_moment == pytest.approx(float(np.sum(i * i * weights)), rel=1e-9)


def test_expected_steps_per_jump():
    law = ZetaJumpDistribution(2.5)
    assert law.expected_steps_per_jump() == pytest.approx(law.mean + 0.5)
    assert math.isinf(ZetaJumpDistribution(1.8).expected_steps_per_jump())


def test_partial_power_sum_small():
    assert _partial_power_sum(2.0, 3) == pytest.approx(1 + 0.25 + 1 / 9)
    assert _partial_power_sum(0.5, 4) == pytest.approx(
        1 + 2**-0.5 + 3**-0.5 + 0.5
    )
    assert _partial_power_sum(1.0, 0) == 0.0


def test_partial_power_sum_euler_maclaurin_branch():
    # Force the asymptotic branch and compare against the integral scale.
    n = 50_000_000
    value = _partial_power_sum(0.5, n)
    expected = 2.0 * math.sqrt(n)  # integral of x^-1/2
    assert value == pytest.approx(expected, rel=1e-3)


# ---------------------------------------------------------------- sampling


def test_sampling_matches_pmf_chi_square(rng):
    law = ZetaJumpDistribution(2.5)
    n = 100_000
    samples = law.sample(rng, n)
    edges = [0, 1, 2, 3, 5, 10, 100]
    observed = [np.count_nonzero(samples == 0)]
    expected = [float(law.pmf(0)) * n]
    for lo, hi in zip(edges[1:], edges[2:] + [None]):
        if hi is None:
            observed.append(int(np.count_nonzero(samples >= lo)))
            expected.append(float(law.tail(lo)) * n)
        else:
            observed.append(int(np.count_nonzero((samples >= lo) & (samples < hi))))
            expected.append(float(law.tail(lo) - law.tail(hi)) * n)
    chi2 = sum((o - e) ** 2 / e for o, e in zip(observed, expected))
    assert chi2 < 25.0  # 6 dof


def test_capped_sampling_respects_cap(rng):
    law = ZetaJumpDistribution(2.2, cap=9)
    samples = law.sample(rng, 30_000)
    assert samples.max() <= 9
    assert set(np.unique(samples)) == set(range(10))


def test_capped_sampling_matches_pmf(rng):
    law = ZetaJumpDistribution(2.2, cap=5)
    n = 60_000
    samples = law.sample(rng, n)
    chi2 = 0.0
    for i in range(6):
        expected = float(law.pmf(i)) * n
        observed = int(np.count_nonzero(samples == i))
        chi2 += (observed - expected) ** 2 / expected
    assert chi2 < 20.0


def test_lazy_probability_zero(rng):
    law = ZetaJumpDistribution(2.5, lazy_probability=0.0)
    samples = law.sample(rng, 5_000)
    assert samples.min() >= 1


def test_sample_size_zero(rng):
    law = ZetaJumpDistribution(2.5)
    assert law.sample(rng, 0).shape == (0,)
