"""Cross-validation: vectorized engines vs step-by-step reference processes.

These are the load-bearing integration tests for the simulator's
correctness claim: the O(1)-per-jump engine must produce hitting times
with exactly the law of the object-level Definition 3.4 process.  We
compare hit probabilities and hitting-time distributions statistically on
small instances with large samples.
"""

import numpy as np
import pytest

from repro.distributions.unit import UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.reference import reference_hitting_times
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times
from repro.walks import LevyFlight, LevyWalk, SimpleRandomWalk


def _two_proportion_gap(p1, n1, p2, n2):
    """4-sigma allowance for the difference of two proportions."""
    se = (p1 * (1 - p1) / n1 + p2 * (1 - p2) / n2) ** 0.5
    return 4.0 * se + 1e-3


@pytest.mark.parametrize("alpha,target,horizon", [
    (2.5, (3, 0), 60),
    (2.0, (2, 2), 50),
    (3.5, (3, 1), 80),
])
def test_walk_engine_matches_reference(alpha, target, horizon, rng):
    n_fast, n_ref = 40_000, 4_000
    fast = walk_hitting_times(ZetaJumpDistribution(alpha), target, horizon=horizon, n=n_fast, rng=rng)
    ref = reference_hitting_times(
        lambda g: LevyWalk(alpha, rng=g), target, horizon=horizon, n=n_ref, rng=rng
    )
    gap = _two_proportion_gap(fast.hit_fraction, n_fast, ref.hit_fraction, n_ref)
    assert abs(fast.hit_fraction - ref.hit_fraction) < gap
    # Compare medians of the hit-time distributions as well.
    if fast.n_hits > 50 and ref.n_hits > 50:
        q_fast = np.quantile(fast.hit_times(), [0.25, 0.5, 0.75])
        q_ref = np.quantile(ref.hit_times(), [0.25, 0.5, 0.75])
        assert np.all(np.abs(q_fast - q_ref) <= np.maximum(3.0, 0.35 * q_ref))


def test_srw_engine_matches_reference(rng):
    n_fast, n_ref = 40_000, 4_000
    target, horizon = (2, 1), 40
    fast = walk_hitting_times(UnitJumpDistribution(), target, horizon=horizon, n=n_fast, rng=rng)
    ref = reference_hitting_times(
        lambda g: SimpleRandomWalk(rng=g), target, horizon=horizon, n=n_ref, rng=rng
    )
    gap = _two_proportion_gap(fast.hit_fraction, n_fast, ref.hit_fraction, n_ref)
    assert abs(fast.hit_fraction - ref.hit_fraction) < gap


def test_flight_engine_matches_reference(rng):
    n_fast, n_ref = 40_000, 4_000
    target, horizon = (2, 1), 30
    alpha = 2.2
    fast = flight_hitting_times(ZetaJumpDistribution(alpha), target, horizon=horizon, n=n_fast, rng=rng)
    ref = reference_hitting_times(
        lambda g: LevyFlight(alpha, rng=g), target, horizon=horizon, n=n_ref, rng=rng
    )
    gap = _two_proportion_gap(fast.hit_fraction, n_fast, ref.hit_fraction, n_ref)
    assert abs(fast.hit_fraction - ref.hit_fraction) < gap


def test_walk_and_flight_endpoint_semantics_agree(rng):
    """The walk engine with endpoint-only detection, evaluated at jump
    boundaries, agrees with the flight on WHICH nodes get visited -- here
    via the weaker observable 'did it ever land on the target within ~the
    same number of jumps'."""
    alpha = 2.5
    law = ZetaJumpDistribution(alpha)
    target = (3, 1)
    n = 30_000
    # The walk needs ~E[max(d,1)] steps per jump.
    steps_per_jump = law.expected_steps_per_jump()
    n_jumps = 40
    flight = flight_hitting_times(law, target, horizon=n_jumps, n=n, rng=rng)
    walk = walk_hitting_times(
        law,
        target,
        horizon=int(n_jumps * steps_per_jump * 3),
        n=n,
        rng=rng,
        detect_during_jump=False,
    )
    # The walk's budget is generous, so it should land at least as often.
    assert walk.hit_fraction >= flight.hit_fraction - 0.01
    # And not wildly more often (same per-jump landing law, ~3x budget).
    assert walk.hit_fraction <= 3.5 * flight.hit_fraction + 0.01
