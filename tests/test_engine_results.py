"""Tests for censored hitting-time containers and parallel grouping."""

import numpy as np
import pytest

from repro.engine.results import (
    CENSORED,
    HittingTimeSample,
    bootstrap_parallel,
    group_minimum,
)


def make(times, horizon=100):
    return HittingTimeSample(times=np.asarray(times, dtype=np.int64), horizon=horizon)


def test_basic_properties():
    sample = make([5, CENSORED, 10, 0, CENSORED])
    assert sample.n == 5
    assert sample.n_hits == 3
    assert sample.hit_fraction == pytest.approx(0.6)
    np.testing.assert_array_equal(sample.hit_times(), [5, 10, 0])


def test_validation_rejects_out_of_range():
    with pytest.raises(ValueError):
        make([5, 101])
    with pytest.raises(ValueError):
        make([-2])
    with pytest.raises(ValueError):
        HittingTimeSample(times=np.zeros((2, 2), dtype=np.int64), horizon=5)


def test_probability_by():
    sample = make([5, 10, 20, CENSORED])
    assert sample.probability_by(5) == pytest.approx(0.25)
    assert sample.probability_by(10) == pytest.approx(0.5)
    assert sample.probability_by(100) == pytest.approx(0.75)
    with pytest.raises(ValueError):
        sample.probability_by(101)


def test_restricted():
    sample = make([5, 10, 20, CENSORED])
    restricted = sample.restricted(10)
    assert restricted.horizon == 10
    assert restricted.n_hits == 2
    np.testing.assert_array_equal(restricted.times, [5, 10, CENSORED, CENSORED])
    with pytest.raises(ValueError):
        sample.restricted(1000)


# ----------------------------------------------------------- group minimum


def test_group_minimum_basic():
    times = np.array([5, 7, CENSORED, 3, CENSORED, CENSORED], dtype=np.int64)
    out = group_minimum(times, 3)
    np.testing.assert_array_equal(out, [5, 3])


def test_group_minimum_all_censored():
    times = np.array([CENSORED, CENSORED], dtype=np.int64)
    out = group_minimum(times, 2)
    np.testing.assert_array_equal(out, [CENSORED])


def test_group_minimum_k_one_identity():
    times = np.array([4, CENSORED, 9], dtype=np.int64)
    np.testing.assert_array_equal(group_minimum(times, 1), times)


def test_group_minimum_validation():
    with pytest.raises(ValueError):
        group_minimum(np.array([1, 2, 3], dtype=np.int64), 2)
    with pytest.raises(ValueError):
        group_minimum(np.array([1, 2], dtype=np.int64), 0)


def test_group_minimum_is_min_of_iid(rng):
    """Statistical: P(min over k <= t) == 1 - (1 - F(t))^k."""
    n, k = 60_000, 4
    single = rng.integers(1, 100, size=n).astype(np.int64)
    single[rng.random(n) < 0.3] = CENSORED
    grouped = group_minimum(single, k)
    f_single = float(((single != CENSORED) & (single <= 50)).mean())
    predicted = 1.0 - (1.0 - f_single) ** k
    measured = float(((grouped != CENSORED) & (grouped <= 50)).mean())
    assert abs(measured - predicted) < 0.02


def test_bootstrap_parallel_shape(rng):
    times = np.array([5, CENSORED, 9, 12], dtype=np.int64)
    out = bootstrap_parallel(times, k=3, n_groups=50, rng=rng)
    assert out.shape == (50,)
    valid = out[out != CENSORED]
    assert np.all(np.isin(valid, [5, 9, 12]))


def test_bootstrap_parallel_unbiased(rng):
    n, k = 30_000, 8
    single = rng.integers(1, 1000, size=n).astype(np.int64)
    direct = group_minimum(single[: (n // k) * k], k)
    boot = bootstrap_parallel(single, k, n_groups=n // k, rng=rng)
    assert abs(float(direct.mean()) - float(boot.mean())) < 12.0
