"""Tests for the exact trajectory-recording engine."""

import numpy as np
import pytest

from repro.distributions.unit import ConstantJumpDistribution, UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.trajectories import distinct_nodes_visited, walk_trajectories


def test_shape_and_start(rng):
    out = walk_trajectories(ZetaJumpDistribution(2.5), horizon=20, n=7, rng=rng, start=(3, -1))
    assert out.shape == (7, 21, 2)
    np.testing.assert_array_equal(out[:, 0, 0], np.full(7, 3))
    np.testing.assert_array_equal(out[:, 0, 1], np.full(7, -1))


def test_validation(rng):
    with pytest.raises(ValueError):
        walk_trajectories(ZetaJumpDistribution(2.5), horizon=-1, n=3, rng=rng)
    with pytest.raises(ValueError):
        walk_trajectories(ZetaJumpDistribution(2.5), horizon=5, n=0, rng=rng)


def test_trajectories_are_lattice_paths(rng):
    """Every consecutive pair moves by L1 distance <= 1 (exactly 1 unless
    the lazy step fires) -- the defining property of a Levy WALK."""
    out = walk_trajectories(ZetaJumpDistribution(2.1), horizon=120, n=40, rng=rng)
    steps = np.abs(np.diff(out, axis=1)).sum(axis=2)
    assert steps.max() <= 1


def test_nonlazy_constant_walk_moves_every_step(rng):
    out = walk_trajectories(ConstantJumpDistribution(7), horizon=50, n=30, rng=rng)
    steps = np.abs(np.diff(out, axis=1)).sum(axis=2)
    assert np.all(steps == 1)
    # Positions along a phase are at increasing ring distances from the
    # phase start; over 7 steps the displacement from step 0 is exactly 7.
    l1 = np.abs(out[:, 7] - out[:, 0]).sum(axis=1)
    np.testing.assert_array_equal(l1, np.full(30, 7))


def test_lazy_fraction_matches_law(rng):
    out = walk_trajectories(UnitJumpDistribution(0.5), horizon=400, n=200, rng=rng)
    steps = np.abs(np.diff(out, axis=1)).sum(axis=2)
    lazy_fraction = float((steps == 0).mean())
    assert abs(lazy_fraction - 0.5) < 0.02


def test_matches_object_level_displacement(rng):
    """Joint-law check via the endpoint: displacement quantiles at step T
    must match full object-level walks."""
    from repro.rng import spawn
    from repro.walks import LevyWalk

    alpha, T = 2.5, 64
    out = walk_trajectories(ZetaJumpDistribution(alpha), horizon=T, n=2_500, rng=rng)
    engine_l1 = np.abs(out[:, T]).sum(axis=1)
    reference = []
    for child in spawn(rng, 500):
        walk = LevyWalk(alpha, rng=child)
        walk.run(T)
        reference.append(abs(walk.position[0]) + abs(walk.position[1]))
    reference = np.asarray(reference)
    for q in (0.25, 0.5, 0.75):
        a = float(np.quantile(engine_l1, q))
        b = float(np.quantile(reference, q))
        assert abs(a - b) <= max(3.0, 0.3 * b), (q, a, b)


def test_distinct_nodes_simple_cases():
    trajectory = np.array([[[0, 0], [1, 0], [0, 0], [0, 1]]])
    assert distinct_nodes_visited(trajectory)[0] == 3
    stay = np.zeros((1, 5, 2), dtype=np.int64)
    assert distinct_nodes_visited(stay)[0] == 1


def test_distinct_nodes_validation():
    with pytest.raises(ValueError):
        distinct_nodes_visited(np.zeros((3, 2)))


def test_distinct_nodes_negative_coordinates():
    trajectory = np.array([[[0, 0], [-1, 0], [-1, -1], [0, 0]]], dtype=np.int64)
    assert distinct_nodes_visited(trajectory)[0] == 3


def test_ballistic_law_visits_everything_once(rng):
    """With huge constant jumps, a T-step prefix is one straight phase:
    T+1 distinct nodes."""
    out = walk_trajectories(ConstantJumpDistribution(10_000), horizon=64, n=50, rng=rng)
    counts = distinct_nodes_visited(out)
    np.testing.assert_array_equal(counts, np.full(50, 65))
