"""Tests for regimes, alpha*, and the polylog correction factors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exponents import (
    Regime,
    characteristic_time,
    clamp_to_superdiffusive,
    gamma_factor,
    mu_factor,
    nu_factor,
    optimal_exponent,
    regime,
    theorem_1_5_exponent,
)


def test_regime_boundaries():
    assert regime(1.5) is Regime.BALLISTIC
    assert regime(2.0) is Regime.BALLISTIC
    assert regime(2.0001) is Regime.SUPERDIFFUSIVE
    assert regime(2.9999) is Regime.SUPERDIFFUSIVE
    assert regime(3.0) is Regime.DIFFUSIVE
    assert regime(7.0) is Regime.DIFFUSIVE


def test_regime_rejects_invalid():
    with pytest.raises(ValueError):
        regime(1.0)
    with pytest.raises(ValueError):
        regime(0.0)


def test_optimal_exponent_examples():
    # k = l gives alpha* = 2; k = 1 gives 3; k = sqrt(l) gives 2.5.
    assert optimal_exponent(64, 64) == pytest.approx(2.0)
    assert optimal_exponent(1, 100) == pytest.approx(3.0)
    assert optimal_exponent(8, 64) == pytest.approx(2.5)


def test_optimal_exponent_validation():
    with pytest.raises(ValueError):
        optimal_exponent(0, 10)
    with pytest.raises(ValueError):
        optimal_exponent(5, 1)


@given(st.integers(2, 10**6), st.integers(2, 10**6))
def test_optimal_exponent_monotone(k, l):
    """alpha* decreases in k and increases in l."""
    base = optimal_exponent(k, l)
    assert optimal_exponent(k * 2, l) < base
    if l >= 2 and k >= 2:
        assert optimal_exponent(k, l * 4) > base


def test_theorem_1_5_exponent_above_star():
    assert theorem_1_5_exponent(16, 256) > optimal_exponent(16, 256)


def test_clamp():
    assert clamp_to_superdiffusive(5.0) == pytest.approx(3.0 - 1e-3)
    assert clamp_to_superdiffusive(1.0) == pytest.approx(2.0 + 1e-3)
    assert clamp_to_superdiffusive(2.5) == 2.5


def test_mu_nu_factors():
    l = 1000
    assert mu_factor(2.0, l) == pytest.approx(math.log(l))
    assert mu_factor(2.5, l) == pytest.approx(2.0)
    assert nu_factor(3.0, l) == pytest.approx(math.log(l))
    assert nu_factor(2.5, l) == pytest.approx(2.0)
    # Near the endpoints mu/nu saturate at log l.
    assert mu_factor(2.0001, l) == pytest.approx(math.log(l))


def test_gamma_factor():
    l = 100
    value = gamma_factor(2.5, l)
    assert value == pytest.approx(math.log(l) ** (2.0 / 1.5) / 0.25)
    with pytest.raises(ValueError):
        gamma_factor(3.0, l)
    with pytest.raises(ValueError):
        gamma_factor(2.0, l)


def test_characteristic_time_per_regime():
    l = 64
    assert characteristic_time(1.5, l) == pytest.approx(64.0)
    assert characteristic_time(2.5, l) == pytest.approx(64.0**1.5)
    assert characteristic_time(3.0, l) == pytest.approx(4096.0)
    assert characteristic_time(4.2, l) == pytest.approx(4096.0)


def test_characteristic_time_validation():
    with pytest.raises(ValueError):
        characteristic_time(2.5, 1)


@given(st.floats(2.01, 2.99), st.integers(4, 10**5))
def test_characteristic_time_between_l_and_l_squared(alpha, l):
    t = characteristic_time(alpha, l)
    assert l ** 1.0 <= t <= l ** 2.0 + 1e-6
