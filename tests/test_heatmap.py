"""Tests for the ASCII heatmap renderer."""

import numpy as np
import pytest

from repro.reporting.heatmap import ascii_heatmap


def test_heatmap_shape_and_center():
    grid = np.zeros((5, 5))
    grid[2, 2] = 1.0
    text = ascii_heatmap(grid, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert len(lines) == 6
    assert all(len(line) == 5 for line in lines[1:])
    # Center marked 'O' (middle row, middle column).
    assert lines[3][2] == "O"


def test_heatmap_orientation():
    """grid[x + r, y + r]: a mark at (0, +2) must appear in the TOP row."""
    grid = np.zeros((5, 5))
    grid[2, 4] = 1.0  # (x=0, y=+2)
    text = ascii_heatmap(grid, mark_center=False)
    lines = text.splitlines()
    assert lines[0].strip() != ""
    assert all(line.strip() == "" for line in lines[1:])


def test_heatmap_density_ordering():
    grid = np.zeros((3, 3))
    grid[0, 0] = 1e-6
    grid[2, 2] = 1.0
    text = ascii_heatmap(grid, mark_center=False, log_scale=True)
    ramp = " .:-=+*#%@"
    chars = [c for line in text.splitlines() for c in line if c != " "]
    assert len(chars) == 2
    # The dense cell must use a later ramp character than the sparse one.
    assert max(ramp.index(c) for c in chars) > min(ramp.index(c) for c in chars)


def test_heatmap_empty_grid():
    text = ascii_heatmap(np.zeros((3, 3)), title="x", mark_center=False)
    assert "(empty grid)" in text


def test_heatmap_validation():
    with pytest.raises(ValueError):
        ascii_heatmap(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        ascii_heatmap(-np.ones((3, 3)))
    with pytest.raises(ValueError):
        ascii_heatmap(np.zeros(4))
