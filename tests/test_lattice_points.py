"""Unit tests for repro.lattice.points (norms and distances)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice.points import (
    ORIGIN,
    is_lattice_neighbor,
    l1_distance,
    l1_norm,
    l2_distance,
    l2_norm,
    linf_distance,
    linf_norm,
)

coords = st.integers(min_value=-10_000, max_value=10_000)
points = st.tuples(coords, coords)


def test_origin_is_zero():
    assert ORIGIN == (0, 0)
    assert l1_norm(ORIGIN) == 0
    assert l2_norm(ORIGIN) == 0.0
    assert linf_norm(ORIGIN) == 0


def test_norms_scalar_examples():
    assert l1_norm((3, -4)) == 7
    assert l2_norm((3, -4)) == pytest.approx(5.0)
    assert linf_norm((3, -4)) == 4


def test_distances_scalar_examples():
    assert l1_distance((1, 2), (4, -2)) == 7
    assert l2_distance((0, 0), (3, 4)) == pytest.approx(5.0)
    assert linf_distance((5, 5), (2, 9)) == 4


def test_norms_array_form():
    pts = np.array([[0, 0], [1, -1], [-3, 4]])
    np.testing.assert_array_equal(l1_norm(pts), [0, 2, 7])
    np.testing.assert_array_equal(linf_norm(pts), [0, 1, 4])
    np.testing.assert_allclose(l2_norm(pts), [0.0, np.sqrt(2), 5.0])


def test_distance_array_form():
    a = np.array([[0, 0], [2, 3]])
    b = np.array([[1, 1], [2, 3]])
    np.testing.assert_array_equal(l1_distance(a, b), [2, 0])


@given(points)
def test_norm_ordering(p):
    # ||p||_inf <= ||p||_2 <= ||p||_1 <= 2 ||p||_inf
    assert linf_norm(p) <= l2_norm(p) + 1e-9
    assert l2_norm(p) <= l1_norm(p) + 1e-9
    assert l1_norm(p) <= 2 * linf_norm(p)


@given(points, points)
def test_l1_triangle_inequality(p, q):
    assert l1_distance(p, q) <= l1_norm(p) + l1_norm(q)
    assert l1_distance(p, q) == l1_distance(q, p)


@given(points, points)
def test_distance_zero_iff_equal(p, q):
    assert (l1_distance(p, q) == 0) == (p == q)


def test_is_lattice_neighbor():
    assert is_lattice_neighbor((0, 0), (1, 0))
    assert is_lattice_neighbor((5, -3), (5, -4))
    assert not is_lattice_neighbor((0, 0), (1, 1))
    assert not is_lattice_neighbor((0, 0), (0, 0))
    assert not is_lattice_neighbor((0, 0), (2, 0))
