"""Tests for the two-sample comparison helpers."""

import numpy as np
import pytest

from repro.analysis.comparisons import mann_whitney_u, two_proportion_z
from repro.engine.results import CENSORED


def test_two_proportion_z_detects_difference():
    result = two_proportion_z(500, 1000, 300, 1000)
    assert result.significant(0.001)
    assert result.direction > 0


def test_two_proportion_z_null():
    result = two_proportion_z(300, 1000, 310, 1000)
    assert not result.significant(0.01)


def test_two_proportion_z_degenerate():
    result = two_proportion_z(0, 100, 0, 100)
    assert result.p_value == 1.0


def test_two_proportion_z_validation():
    with pytest.raises(ValueError):
        two_proportion_z(1, 0, 1, 10)
    with pytest.raises(ValueError):
        two_proportion_z(11, 10, 1, 10)


def test_two_proportion_z_calibration(rng):
    """Under the null, the test should reject ~ at the nominal rate."""
    rejections = 0
    trials = 300
    for _ in range(trials):
        a = int(rng.binomial(400, 0.3))
        b = int(rng.binomial(400, 0.3))
        if two_proportion_z(a, 400, b, 400).significant(0.05):
            rejections += 1
    assert rejections / trials < 0.12


def test_mann_whitney_detects_shift(rng):
    a = rng.integers(50, 100, 300)  # slower
    b = rng.integers(1, 50, 300)  # faster
    result = mann_whitney_u(a, b, horizon=200)
    assert result.significant(0.001)
    assert result.direction > 0  # A tends larger


def test_mann_whitney_censoring_counts_as_slow(rng):
    a = np.full(200, CENSORED, dtype=np.int64)  # all censored: slowest
    b = rng.integers(1, 100, 200)
    result = mann_whitney_u(a, b, horizon=100)
    assert result.significant(0.001)
    assert result.direction > 0


def test_mann_whitney_null(rng):
    a = rng.integers(1, 100, 200)
    b = rng.integers(1, 100, 200)
    result = mann_whitney_u(a, b, horizon=100)
    assert not result.significant(0.001)


def test_mann_whitney_validation():
    with pytest.raises(ValueError):
        mann_whitney_u(np.array([]), np.array([1]), horizon=10)
