"""Supervised execution: heartbeats, watchdog, retries, chaos matrix.

The acceptance bar (ISSUE 6): a hung pool worker is detected by the
heartbeat watchdog within the configured timeout, killed, and its chunk
rescheduled so the final merged sample is bit-identical to an unfaulted
run; a sweep containing a poison grid point quarantines that point and
completes the others at ``workers=0`` and ``workers=2``; resource
pressure degrades checkpointing to manifest-only mode instead of
crashing; and every fault in the chaos matrix ends in a classified
outcome with the documented exit code.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import telemetry
from repro.cli import EXIT_QUARANTINED
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.results import HittingTimeSample
from repro.runner import (
    ChaosFault,
    ChaosPlan,
    ChunkFailedError,
    CorruptPayloadError,
    FaultInjector,
    HittingTimeTask,
    Job,
    PoisonTask,
    ResourceGuards,
    RetryPolicy,
    Runner,
    Supervisor,
    WorkerHeartbeat,
    arm,
    chaos_plan,
    run_chaos_matrix,
    trap_signals,
)
from repro.runner.chaos import OUTCOME_EXIT_CODES, parse_fault
from repro.runner.supervision import (
    FATAL,
    TRANSIENT,
    chunk_retry_key,
    validate_payload,
)
from repro.sweep import SweepSpec, run_sweep
from repro.telemetry.events import read_events

LAW = ZetaJumpDistribution(2.5)
TARGET = (5, 3)
HORIZON = 150
N_WALKS = 400
N_CHUNKS = 4
SEED = 42


def make_task() -> HittingTimeTask:
    return HittingTimeTask(jumps=LAW, target=TARGET, horizon=HORIZON)


@pytest.fixture(scope="module")
def reference():
    """The unfaulted chunked sample every recovery test must match."""
    return Runner(n_chunks=N_CHUNKS).run(make_task(), N_WALKS, SEED).payload


# -------------------------------------------------------------- retry policy


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(quarantine_after=0)


def test_retry_policy_classifies_transient_vs_fatal():
    policy = RetryPolicy()
    assert policy.classify(RuntimeError("boom")) == TRANSIENT
    assert policy.classify(CorruptPayloadError("torn")) == TRANSIENT
    assert policy.classify(OSError("hiccup")) == TRANSIENT
    for error in (MemoryError(), KeyboardInterrupt(), SystemExit()):
        assert policy.classify(error) == FATAL


def test_retry_policy_backoff_deterministic_seeded_jitter():
    policy = RetryPolicy(
        backoff_base=0.1, backoff_factor=2.0, backoff_max=10.0, jitter=0.25
    )
    key = chunk_retry_key("sample", 3)
    # Reproducible: the jitter is seeded from (key, attempt), not drawn.
    assert policy.backoff(2, key) == policy.backoff(2, key)
    nominal = 0.1 * 2.0  # base * factor**(attempt-1) for attempt 2
    assert 0.75 * nominal <= policy.backoff(2, key) <= 1.25 * nominal
    # De-synchronised across chunks: different keys jitter differently.
    assert policy.backoff(2, key) != policy.backoff(2, chunk_retry_key("sample", 4))
    # Capped: huge attempt counts saturate at backoff_max (pre-jitter).
    assert policy.backoff(99, key) <= 10.0 * 1.25
    assert RetryPolicy(backoff_base=0.0).backoff(5) == 0.0
    assert chunk_retry_key("a", 1) == chunk_retry_key("a", 1)
    assert chunk_retry_key("a", 1) != chunk_retry_key("a", 2)


def test_validate_payload_screens_sizes():
    sample = HittingTimeSample(times=np.zeros(5, dtype=np.int64), horizon=10)
    assert validate_payload(sample, 5, 0) is sample
    with pytest.raises(CorruptPayloadError):
        validate_payload(sample, 6, 0)
    with pytest.raises(CorruptPayloadError):
        validate_payload(None, 5, 0)

    class NoSize:  # payload kinds without an ``n`` pass through (foraging)
        pass

    payload = NoSize()
    assert validate_payload(payload, 5, 0) is payload


class OOMTask:
    """Fatal-classified failure: must not burn the retry budget."""

    kind = "hitting"

    def __call__(self, n, seed):
        raise MemoryError("synthetic OOM")

    def merge(self, plan, chunks):  # pragma: no cover - never reached
        raise AssertionError


def test_fatal_error_stops_without_retries():
    with pytest.raises(ChunkFailedError, match="failed 1 times"):
        Runner(n_chunks=2, retry_policy=RetryPolicy(backoff_base=0.0)).run(
            OOMTask(), 10, SEED
        )


# ------------------------------------------------------ heartbeats & watchdog


def test_worker_heartbeat_touches_and_rate_limits(tmp_path):
    path = tmp_path / "chunk.hb"
    beat = WorkerHeartbeat(path, interval=60.0)
    assert path.exists() and beat.beats == 1  # immediate touch at install
    for _ in range(5):
        beat.tick()
    assert beat.beats == 1  # rate-limited: interval has not elapsed
    beat.touch(force=True)
    assert beat.beats == 2
    assert beat.enabled is False  # engine accounting stays off in workers


def test_supervisor_flags_only_silent_chunks(tmp_path):
    supervisor = Supervisor(tmp_path / "hb", timeout=0.5, poll=60.0)
    supervisor.directory.mkdir(parents=True, exist_ok=True)
    alive_path = supervisor.register("job", 0)
    hung_path = supervisor.register("job", 1)
    WorkerHeartbeat(alive_path, interval=0.0)
    WorkerHeartbeat(hung_path, interval=0.0)
    assert supervisor.scan_once() == {}  # both just beat
    # One second later the live worker has beaten again; the other is silent.
    later = time.time() + 1.0
    os.utime(alive_path, (later, later))
    newly = supervisor.scan_once(now=later + 0.1)
    assert set(newly) == {("job", 1)}
    assert newly[("job", 1)] > 0.5
    hung = supervisor.take_hung()
    assert set(hung) == {("job", 1)}
    assert supervisor.take_hung() == {}  # drained
    assert supervisor.watched() == 1
    supervisor.unregister("job", 0)
    assert supervisor.watched() == 0


def test_supervisor_catches_worker_dead_before_first_touch(tmp_path):
    supervisor = Supervisor(tmp_path / "hb", timeout=0.5, poll=60.0)
    supervisor.directory.mkdir(parents=True, exist_ok=True)
    supervisor.register("job", 2)  # heartbeat file never created
    newly = supervisor.scan_once(now=time.time() + 1.0)
    assert ("job", 2) in newly


def test_hung_worker_detected_and_rescheduled_bit_identical(tmp_path, reference):
    """Acceptance: watchdog kills the hung worker; recovered sample matches."""
    log = tmp_path / "events.jsonl"
    injector = FaultInjector(
        "hang", chunk_index=1, arm_file=str(tmp_path / "armed"), hang_seconds=60.0
    )
    arm(injector)
    recorder = telemetry.configure(log_path=log)
    try:
        outcome = Runner(
            n_chunks=N_CHUNKS,
            workers=2,
            chunk_timeout=1.0,
            fault_injector=injector,
            backoff_base=0.01,
            recorder=recorder,
        ).run(make_task(), N_WALKS, SEED)
        metrics = recorder.metrics.snapshot()
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    assert outcome.complete and outcome.retries >= 1
    events = read_events(log)
    hung = [e for e in events if e["type"] == "heartbeat" and e.get("status") == "hung"]
    assert hung and hung[0]["chunk"] == 1
    # Detected promptly after the timeout, nowhere near the 60s hang.
    assert 1.0 < hung[0]["silent"] < 30.0
    assert any(e["type"] == "pool_rebuild" for e in events)
    assert metrics["runner.hung_chunks"]["value"] >= 1


def test_slow_chunk_keeps_heartbeating_and_is_not_killed(tmp_path, reference):
    """A straggler is not a hang: ticking engines must placate the watchdog."""
    plan = ChaosPlan(
        (ChaosFault("slowdown", chunk=1, seconds=3.0),), arm_dir=str(tmp_path / "arm")
    )
    with plan:
        outcome = Runner(
            n_chunks=N_CHUNKS,
            workers=2,
            chunk_timeout=1.0,
            fault_injector=plan,
            backoff_base=0.01,
        ).run(make_task(), N_WALKS, SEED)
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    assert outcome.complete and outcome.retries == 0


# ------------------------------------------------------------ chunk screening


def test_crash_on_first_attempts_then_recovers(tmp_path, reference):
    plan = ChaosPlan(
        (ChaosFault("crash", chunk=1, attempts=2),), arm_dir=str(tmp_path / "arm")
    )
    policy = RetryPolicy(max_attempts=4, backoff_base=0.01, backoff_max=0.05)
    with plan:
        outcome = Runner(
            n_chunks=N_CHUNKS, retry_policy=policy, fault_injector=plan
        ).run(make_task(), N_WALKS, SEED)
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    assert outcome.retries == 2  # failed on attempts 1 and 2, landed on 3


def test_corrupt_return_screened_and_retried(tmp_path, reference):
    plan = ChaosPlan(
        (ChaosFault("corrupt-return", chunk=0),), arm_dir=str(tmp_path / "arm")
    )
    policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
    with plan:
        outcome = Runner(
            n_chunks=N_CHUNKS, retry_policy=policy, fault_injector=plan
        ).run(make_task(), N_WALKS, SEED)
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    assert outcome.retries == 1  # the swapped payload never reached the merge


# ------------------------------------------------------------------ quarantine


@pytest.mark.parametrize("workers", [0, 2])
def test_poison_point_quarantined_siblings_complete(workers, reference):
    """Acceptance: the breaker fences the poison point at both pool sizes."""
    policy = RetryPolicy(max_attempts=2, backoff_base=0.0, quarantine_after=2)
    runner = Runner(n_chunks=N_CHUNKS, workers=workers, retry_policy=policy)
    poison, healthy = runner.run_many(
        [
            Job(PoisonTask(make_task()), N_WALKS, SEED, label="poison"),
            Job(make_task(), N_WALKS, SEED, label="healthy"),
        ]
    )
    assert poison.quarantined_point and not poison.complete
    assert not poison.interrupted and not poison.degraded
    assert poison.payload.n == 0  # empty censored sample, still mergeable
    assert healthy.complete and not healthy.quarantined_point
    np.testing.assert_array_equal(healthy.payload.times, reference.times)
    assert runner.quarantined_points == 1
    assert OUTCOME_EXIT_CODES["quarantined"] == EXIT_QUARANTINED == 4


def _poison_or_default(params, horizon):
    from repro.sweep.spec import default_task

    task = default_task(params, horizon)
    if params["alpha"] == 9.9:  # the poisoned cell of the grid
        return PoisonTask(task)
    return task


@pytest.mark.parametrize("workers", [0, 2])
def test_sweep_with_poison_point_completes_the_grid(workers):
    spec = SweepSpec(
        axes={"alpha": (2.2, 9.9), "l": (12,)},
        n=240,
        horizon=144,
        task=_poison_or_default,
    )
    runner = Runner(
        n_chunks=N_CHUNKS,
        workers=workers,
        retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
    )
    result = run_sweep(spec, seed=SEED, runner=runner)  # sweeps arm the breaker
    healthy, poisoned = result.results
    assert poisoned.outcome.quarantined_point and poisoned.sample.n == 0
    assert healthy.outcome.complete and healthy.sample.n == 240
    assert result.quarantined_points == 1
    assert "quarantined" in result.summary_table().render()
    assert result.to_dict()["points"][1]["quarantined"] is True


def test_exhaustion_without_breaker_still_raises():
    """Back-compat: no quarantine_after means the old ChunkFailedError."""

    class Failing:
        kind = "hitting"

        def __call__(self, n, seed):
            raise RuntimeError("synthetic permanent failure")

        def merge(self, plan, chunks):  # pragma: no cover - never reached
            raise AssertionError

    with pytest.raises(ChunkFailedError):
        Runner(
            n_chunks=2, retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0)
        ).run(Failing(), 10, SEED)


# ------------------------------------------------------------ resource guards


def test_enospc_degrades_checkpointing_and_resume_recomputes(tmp_path, reference):
    guards = ResourceGuards(min_disk_mb=1.0, check_every=0.0, disk_probe=lambda: 0.0)
    runner = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resource_guards=guards)
    outcome = runner.run(make_task(), N_WALKS, SEED)
    assert outcome.complete and outcome.storage_degraded
    assert runner.storage_degraded  # aggregate flag feeds the CLI exit code
    np.testing.assert_array_equal(outcome.payload.times, reference.times)
    run_dir = tmp_path / "sample"
    assert not list(run_dir.glob("chunks/*.npz"))  # no payload writes
    manifests = sorted(run_dir.glob("chunks/*.json"))
    assert len(manifests) == N_CHUNKS
    assert all(json.loads(m.read_text()).get("degraded") for m in manifests)
    # Degraded manifests are provenance, not data: resume recomputes them.
    resumed = Runner(checkpoint_dir=tmp_path, n_chunks=N_CHUNKS, resume=True).run(
        make_task(), N_WALKS, SEED
    )
    assert resumed.complete and resumed.resumed_chunks == 0
    np.testing.assert_array_equal(resumed.payload.times, reference.times)
    assert list(run_dir.glob("chunks/*.npz"))  # the healthy rerun persists


# ---------------------------------------------------- kill-and-resume (pooled)


def test_sigterm_mid_pooled_sweep_resumes_bit_identical(tmp_path):
    """SIGTERM a workers=2 sweep mid-run; --resume completes it exactly
    once per chunk and reproduces the serial samples bit-for-bit."""
    spec = SweepSpec(axes={"alpha": (2.2, 2.8), "l": (12,)}, n=240, horizon=144)
    serial = run_sweep(spec, seed=SEED, runner=Runner(n_chunks=N_CHUNKS))
    ckpt = tmp_path / "ckpt"
    plan = ChaosPlan((ChaosFault("sigterm", chunk=1),), arm_dir=str(tmp_path / "arm"))
    with plan:
        runner = Runner(
            checkpoint_dir=ckpt,
            workers=2,
            n_chunks=N_CHUNKS,
            fault_injector=plan,
            backoff_base=0.01,
        )
        with trap_signals():
            first = run_sweep(spec, seed=SEED, runner=runner, label="grid")
    assert first.interrupted
    log = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=log)
    try:
        resumed = run_sweep(
            spec,
            seed=SEED,
            runner=Runner(
                checkpoint_dir=ckpt,
                workers=2,
                n_chunks=N_CHUNKS,
                resume=True,
                recorder=recorder,
            ),
            label="grid",
        )
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    assert not resumed.interrupted
    for a, b in zip(serial, resumed):
        np.testing.assert_array_equal(a.sample.times, b.sample.times)
    # No duplicate chunks: every chunk either resumed from disk or was
    # computed exactly once in the second run.
    done = [
        (e["label"], e["chunk"])
        for e in read_events(log)
        if e["type"] == "chunk_end"
    ]
    assert len(done) == len(set(done))
    assert any(r.outcome.resumed_chunks > 0 for r in resumed.results)
    for r in resumed.results:
        assert r.outcome.complete
        computed = sum(1 for label, _ in done if label == f"grid-{r.point.label}")
        assert r.outcome.resumed_chunks + computed == r.outcome.total_chunks


# ---------------------------------------------------------------- fault arming


def test_injector_arm_handle_disarms_on_exception(tmp_path):
    injector = FaultInjector("hang", chunk_index=0, arm_file=str(tmp_path / "armed"))
    with pytest.raises(RuntimeError):
        with injector.arm() as path:
            assert os.path.exists(path)
            raise RuntimeError("test body blew up")
    assert not os.path.exists(str(tmp_path / "armed"))  # no leaked arm file
    handle = injector.arm()
    assert handle.exists()
    handle.disarm()
    handle.disarm()  # idempotent
    assert not handle.exists()
    assert os.fspath(handle) == str(tmp_path / "armed")


def test_chaos_plan_parse_arm_and_exception_cleanup(tmp_path):
    fault = parse_fault("crash@3#2/7.5")
    assert fault == ChaosFault("crash", chunk=3, attempts=2, seconds=7.5)
    with pytest.raises(ValueError):
        parse_fault("nonsense")
    plan = chaos_plan("hang@1,crash@0#2", tmp_path / "arm")
    assert [f.kind for f in plan.faults] == ["hang", "crash"]
    with pytest.raises(RuntimeError):
        with plan:
            assert plan.armed(0) and plan.armed(1)
            raise RuntimeError("test body blew up")
    assert not plan.armed(0) and not plan.armed(1)


# --------------------------------------------------------------- chaos matrix


def test_chaos_matrix_smoke_subset(tmp_path):
    rows = run_chaos_matrix(
        faults=["crash", "corrupt-return", "poison"],
        workers=0,
        chunk_timeout=1.0,
        n_walks=200,
        n_chunks=2,
        seed=7,
        workdir=tmp_path,
    )
    assert [row.ok for row in rows] == [True, True, True]
    assert {row.fault: row.outcome for row in rows} == {
        "crash": "completed",
        "corrupt-return": "completed",
        "poison": "quarantined",
    }
    assert rows[-1].exit_code == EXIT_QUARANTINED
    assert all(row.bit_identical for row in rows)


# ----------------------------------------------------------- report rendering


def _supervision_events():
    return [
        {"type": "run_start", "label": "p", "n_total": 100, "n_chunks": 2, "t": 0.0},
        {"type": "chunk_start", "label": "p", "chunk": 0, "attempt": 1, "t": 0.1},
        {"type": "retry", "label": "p", "chunk": 0, "attempt": 1,
         "reason": "boom", "t": 0.2},
        {"type": "retry", "label": "p", "chunk": 0, "attempt": 2,
         "reason": "boom", "t": 0.3},
        {"type": "quarantine", "label": "p", "scope": "point", "chunk": 0,
         "failures": 2, "reason": "boom", "completed": 0, "total": 2, "t": 0.4},
        {"type": "heartbeat", "label": "p", "chunk": 1, "status": "hung",
         "silent": 2.0, "timeout": 1.0, "t": 0.5},
        {"type": "run_end", "label": "p", "completed": 0, "total": 2,
         "point_quarantined": True, "seconds": 0.6, "t": 0.6},
    ]


def test_report_renders_quarantine_and_heartbeat_sections():
    from repro.telemetry.report import render_report, summarize_events

    summary = summarize_events(_supervision_events())
    assert len(summary["quarantined_points"]) == 1
    assert summary["runs"][0].status == "quarantined"
    incident_types = {e["type"] for e in summary["incidents"]}
    assert {"quarantine", "heartbeat"} <= incident_types
    text = render_report(_supervision_events())
    assert "quarantined points" in text
    assert "retry timeline" in text
    assert "heartbeat" in text


def test_watch_tracks_quarantined_points():
    from repro.telemetry.watch import WatchState, render_watch

    state = WatchState()
    state.consume(_supervision_events())
    assert state.quarantined == ["p"]
    assert any(e["type"] == "heartbeat" for e in state.incidents)
    assert "quarantined points" in render_watch(state)
