"""The ``repro.api`` facade and the legacy engine-spelling shims.

``repro.api`` is the documented stable import surface (README): every
name in ``__all__`` must import and resolve to the same object as its
home module.  The engine entry points behind it follow the unified
``horizon``/``n`` keyword-only convention; each legacy spelling keeps
working for one release and emits exactly one DeprecationWarning.
"""

import warnings

import numpy as np
import pytest

import repro.api as api
from repro.api import SweepSpec, ZetaJumpDistribution, walk_hitting_times


def test_all_names_resolve():
    assert len(api.__all__) == len(set(api.__all__))
    for name in api.__all__:
        assert getattr(api, name) is not None
    # The headline spellings from the README example.
    assert SweepSpec is api.SweepSpec
    assert walk_hitting_times is api.walk_hitting_times


def test_facade_matches_home_modules():
    from repro.api.query import EstimateRequest as home_request
    from repro.api.query import estimate as home_estimate
    from repro.api.query import warm_estimates as home_warm
    from repro.engine.vectorized import walk_hitting_times as home_engine
    from repro.runner import Runner as home_runner
    from repro.sweep import run_sweep as home_sweep

    assert api.walk_hitting_times is home_engine
    assert api.Runner is home_runner
    assert api.run_sweep is home_sweep
    assert api.estimate is home_estimate
    assert api.EstimateRequest is home_request
    assert api.warm_estimates is home_warm


def test_query_names_are_in_the_inventory():
    for name in ("EstimateRequest", "EstimateResponse", "estimate", "warm_estimates"):
        assert name in api.__all__


def test_serve_protocol_reexports_the_same_schema():
    from repro.serve.protocol import EstimateRequest as wire_request
    from repro.serve.protocol import EstimateResponse as wire_response

    assert wire_request is api.EstimateRequest
    assert wire_response is api.EstimateResponse


JUMPS = ZetaJumpDistribution(2.5)

#: (callable, new-style kwargs, the same call in a legacy spelling).
_SPELLINGS = [
    (
        api.walk_hitting_times,
        dict(horizon=50, n=4, rng=0),
        dict(horizon=50, n_walks=4, rng=0),
    ),
    (
        api.flight_hitting_times,
        dict(horizon=50, n=4, rng=0),
        dict(horizon_jumps=50, n_flights=4, rng=0),
    ),
    (
        api.walk_trajectories,
        dict(horizon=20, n=3, rng=0),
        dict(n_steps=20, n_walks=3, rng=0),
    ),
    (
        api.ball_hitting_times,
        dict(radius=2, horizon=50, n=4, rng=0),
        dict(radius=2, horizon=50, n_walks=4, rng=0),
    ),
    (
        api.multi_target_search,
        dict(horizon=50, n=4, rng=0),
        dict(horizon=50, n_walks=4, rng=0),
    ),
]


def _lead_args(func):
    if func is api.walk_trajectories:
        return (JUMPS,)
    if func is api.multi_target_search:
        return (JUMPS, [(3, 0), (0, 5)])
    return (JUMPS, (3, 4))


@pytest.mark.parametrize(
    "func,new,legacy", _SPELLINGS, ids=lambda v: getattr(v, "__name__", "")
)
def test_legacy_spelling_warns_once_and_matches(func, new, legacy):
    lead = _lead_args(func)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # new spelling: no warning at all
        expected = func(*lead, **new)
    with pytest.warns(DeprecationWarning) as caught:
        got = func(*lead, **legacy)
    assert len(caught) == 1
    assert "legacy call spelling" in str(caught[0].message)
    def payload(result):
        for attr in ("times", "discovery_times"):
            if hasattr(result, attr):
                return getattr(result, attr)
        return result

    np.testing.assert_array_equal(payload(got), payload(expected))


def test_legacy_positional_warns_once():
    with pytest.warns(DeprecationWarning) as caught:
        sample = api.walk_hitting_times(JUMPS, (3, 4), 50, 4, 0)
    assert len(caught) == 1
    assert "keyword-only" in str(caught[0].message)
    assert sample.n == 4


def test_legacy_and_new_name_conflict_is_an_error():
    with pytest.raises(TypeError):
        api.walk_hitting_times(JUMPS, (3, 4), horizon=50, n=4, n_walks=4)
