"""The v2 typed query layer (:mod:`repro.api.query`).

Covers request validation and canonical keys, wire round-trips, the
k-walker interval algebra, tier selection in the in-process
:func:`repro.api.estimate` path (cache hit vs registry warm start vs
theory surrogate vs fresh simulation), :func:`warm_estimates`, and the
legacy engine-kwarg deprecation shim (one combined DeprecationWarning
per call, the `_compat` contract).
"""

import time
import warnings

import pytest

from repro.api.query import (
    EstimateRequest,
    EstimateResponse,
    canonical_key,
    estimate,
    parallel_interval,
    parallel_probability,
    theory_estimate,
    warm_estimates,
)
from repro.telemetry.registry import RunRegistry, build_run_record, new_run_id


def _registry_with_estimate(tmp_path, alpha=2.2, l=24, p=0.05, half=0.01,
                            trials=2000, horizon=None):
    horizon = horizon if horizon is not None else l * l
    registry = RunRegistry(tmp_path / "registry")
    row = {
        "key": f"alpha={alpha} l={l}",
        "label": f"alpha={alpha} l={l}",
        "law": f"alpha={alpha}",
        "params": {"alpha": alpha, "l": l},
        "trials": trials,
        "successes": int(round(p * trials)),
        "p": p,
        "low": p - half,
        "high": p + half,
        "half_width": half,
        "horizon": horizon,
        "status": "complete",
    }
    registry.register(
        build_run_record(
            run_id=new_run_id(), command="sweep", label="test", estimates=[row]
        )
    )
    return registry


# ----------------------------------------------------------- request contract


def test_canonical_key_is_sorted_and_defaults_horizon():
    key = canonical_key(2.5, 16)
    assert key == "alpha=2.5 detect=True horizon=256 k=1 l=16"
    assert EstimateRequest(alpha=2.5, l=16).key == key
    # an explicit l**2 horizon spells identically to the default
    assert EstimateRequest(alpha=2.5, l=16, horizon=256).key == key


def test_request_validation():
    with pytest.raises(ValueError):
        EstimateRequest(alpha=1.0, l=8)
    with pytest.raises(ValueError):
        EstimateRequest(alpha=2.5, l=0)
    with pytest.raises(ValueError):
        EstimateRequest(alpha=2.5, l=8, k=0)
    with pytest.raises(ValueError):
        EstimateRequest(alpha=2.5, l=8, horizon=0)
    with pytest.raises(ValueError):
        EstimateRequest(alpha=2.5, l=8, max_ci=1.5)


def test_request_round_trips_and_ignores_unknown_fields():
    request = EstimateRequest(alpha=2.2, l=12, k=4, max_ci=0.05)
    rebuilt = EstimateRequest.from_dict({**request.to_dict(), "op": "estimate"})
    assert rebuilt == request
    with pytest.raises(ValueError):
        EstimateRequest.from_dict({"l": 8})  # no alpha


def test_response_round_trips_tolerantly():
    response = EstimateResponse(
        key="k", tier="simulation", p=0.1, low=0.08, high=0.12,
        trials=100, successes=10, seq=3, source="monte-carlo",
    )
    rebuilt = EstimateResponse.from_dict(response.to_dict())
    assert rebuilt.key == "k" and rebuilt.trials == 100 and rebuilt.seq == 3
    assert rebuilt.half_width == pytest.approx(0.02)
    # minimal wire object: everything except the key has a default
    minimal = EstimateResponse.from_dict({"key": "k", "p": 0.5})
    assert minimal.final and minimal.low == 0.0 and minimal.high == 1.0
    with pytest.raises(ValueError):
        EstimateResponse.from_dict({"p": 0.5})


# ---------------------------------------------------------- k-walker algebra


def test_parallel_probability_and_interval():
    assert parallel_probability(0.1, 1) == pytest.approx(0.1)
    assert parallel_probability(0.1, 2) == pytest.approx(1 - 0.81)
    assert parallel_probability(1.5, 3) == 1.0  # clipped
    single = parallel_interval(10, 100, 1)
    lifted = parallel_interval(10, 100, 4)
    assert lifted["p"] == pytest.approx(1 - (1 - single["p"]) ** 4)
    # monotone lift preserves ordering
    assert lifted["low"] < lifted["p"] < lifted["high"]


# ---------------------------------------------------------- theory surrogate


def test_theory_surrogate_is_instant_and_approximate():
    request = EstimateRequest(alpha=2.5, l=32)
    started = time.monotonic()
    response = theory_estimate(request)
    elapsed = time.monotonic() - started
    assert elapsed < 0.1  # the acceptance bar: an instant answer
    assert response.tier == "theory"
    assert response.approximate
    assert response.final  # no CI was requested
    assert 0.0 <= response.low <= response.p <= response.high <= 1.0


def test_theory_surrogate_covers_every_regime():
    for alpha in (1.5, 2.5, 3.5):  # ballistic / superdiffusive / diffusive
        response = theory_estimate(EstimateRequest(alpha=alpha, l=16))
        assert response.tier == "theory"
        assert 0.0 <= response.p <= 1.0


def test_theory_surrogate_k_lift_increases_probability():
    single = theory_estimate(EstimateRequest(alpha=2.5, l=16))
    many = theory_estimate(EstimateRequest(alpha=2.5, l=16, k=8))
    assert many.p > single.p


# ------------------------------------------------------------- tier selection


def test_estimate_without_ci_returns_theory_tier(tmp_path):
    response = estimate(
        alpha=2.5, l=16,
        cache_dir=tmp_path / "cache", registry_dir=tmp_path / "registry",
    )
    assert response.tier == "theory"
    assert response.approximate and response.final


def test_estimate_refines_then_serves_from_cache(tmp_path):
    kwargs = dict(cache_dir=tmp_path / "cache", registry_dir=tmp_path / "registry")
    updates = []
    fresh = estimate(
        alpha=2.2, l=6, max_ci=0.06, round_walks=200, max_walks=4000,
        on_update=updates.append, **kwargs,
    )
    assert fresh.tier == "simulation"
    assert fresh.final and fresh.trials > 0
    assert fresh.half_width <= 0.06
    assert fresh.converged
    # the theory surrogate streamed first, then >= 1 progressive response
    assert updates[0].tier == "theory"
    assert any(u.tier == "simulation" and not u.final for u in updates[1:])
    # a repeat is a cache hit: identical numbers, no simulation
    again = estimate(alpha=2.2, l=6, max_ci=0.06, **kwargs)
    assert again.tier == "cache"
    assert (again.p, again.trials) == (fresh.p, fresh.trials)


def test_estimate_warm_starts_from_the_registry(tmp_path):
    registry = _registry_with_estimate(tmp_path, alpha=2.2, l=24, half=0.01)
    response = estimate(
        alpha=2.2, l=24, max_ci=0.05,
        cache_dir=tmp_path / "cache", registry=registry,
    )
    assert response.tier == "cache"
    assert response.trials == 2000  # the registry row's counts, no simulation


def test_estimate_rejects_request_plus_fields(tmp_path):
    with pytest.raises(TypeError):
        estimate(EstimateRequest(alpha=2.5, l=8), alpha=2.5)


# ---------------------------------------------------------------- warm starts


def test_warm_estimates_surfaces_registry_rows(tmp_path):
    registry = _registry_with_estimate(tmp_path, alpha=2.2, l=24)
    found = warm_estimates(law="alpha=2.2", geometry={"l": 24}, registry=registry)
    assert len(found) == 1
    assert found[0].tier == "cache"
    assert found[0].trials == 2000
    # a non-matching filter finds nothing
    assert warm_estimates(law="alpha=9.9", registry=registry) == []


def test_warm_estimates_prefers_cache_entries_and_dedups(tmp_path):
    from repro.serve.cache import ResultCache

    registry = _registry_with_estimate(tmp_path, alpha=2.2, l=24)
    cache = ResultCache(tmp_path / "cache")
    key = canonical_key(2.2, 24)
    cache.put(EstimateResponse(key=key, tier="simulation", p=0.06, low=0.05,
                               high=0.07, trials=9000, source="monte-carlo"))
    found = warm_estimates(
        law="alpha=2.2", geometry={"l": 24}, registry=registry, cache=cache
    )
    assert len(found) == 1  # deduplicated by canonical key
    assert found[0].trials == 9000  # the cache's exact served answer wins


# ------------------------------------------------------------ legacy spellings


def test_legacy_spellings_warn_once_combined(tmp_path):
    kwargs = dict(cache_dir=tmp_path / "cache", registry_dir=tmp_path / "registry")
    with pytest.warns(DeprecationWarning) as caught:
        response = estimate(
            alpha=2.5, target=(3, 4), n_walks=500, detect_during_jump=True,
            **kwargs,
        )
    assert len(caught) == 1  # one combined warning for three legacy aspects
    message = str(caught[0].message)
    for fragment in ("'target'", "'n_walks'", "'detect_during_jump'"):
        assert fragment in message
    assert response.key == canonical_key(2.5, 7)  # |3| + |4|


def test_legacy_budget_spelling_caps_the_simulation(tmp_path):
    kwargs = dict(cache_dir=tmp_path / "cache", registry_dir=tmp_path / "registry")
    with pytest.warns(DeprecationWarning):
        response = estimate(
            alpha=2.2, l=6, max_ci=0.001, n=300, round_walks=100, **kwargs
        )
    # the impossible CI target stops at the legacy n cap, not max_walks
    assert response.tier == "simulation"
    assert response.trials <= 300
    assert not response.converged


def test_legacy_and_new_spelling_conflict_is_an_error(tmp_path):
    with pytest.raises(TypeError):
        estimate(alpha=2.5, l=8, horizon=100, n_steps=100,
                 cache_dir=tmp_path / "c", registry_dir=tmp_path / "r")


def test_new_spelling_emits_no_warning(tmp_path):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        estimate(alpha=2.5, l=8, cache_dir=tmp_path / "c",
                 registry_dir=tmp_path / "r")
