"""Tests for the experiment framework, registry, and cheap experiments.

The expensive Monte-Carlo experiments are exercised by the benchmark
suite at smoke scale; here we test the framework itself plus the
deterministic/cheap experiments end-to-end.
"""

import pytest

from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    validate_scale,
)
from repro.experiments.registry import experiment_ids, get_experiment, run_experiment
from repro.lattice.points import l1_norm
from repro.reporting.table import Table


def test_validate_scale():
    assert validate_scale("smoke") == "smoke"
    with pytest.raises(ValueError):
        validate_scale("huge")


def test_default_target_distance():
    for l in (1, 2, 7, 64, 1001):
        assert l1_norm(default_target(l)) == l
    with pytest.raises(ValueError):
        default_target(0)


def test_default_target_off_axis():
    x, y = default_target(60)
    assert x > 0 and y > 0 and x != y


def test_check_render():
    assert Check("works", True).render() == "[PASS] works"
    assert Check("broken", False, "detail").render() == "[FAIL] broken (detail)"


def test_experiment_result_render():
    table = Table(["a"])
    table.add_row(1)
    result = ExperimentResult(
        experiment_id="X",
        title="demo",
        scale="smoke",
        seed=7,
        tables=[table],
        checks=[Check("ok", True)],
        notes=["a note"],
    )
    text = result.render()
    assert "=== X: demo ===" in text
    assert "seed=7" in text
    assert "note: a note" in text
    assert "ALL CHECKS PASSED" in text
    assert result.passed


def test_experiment_result_failure_verdict():
    result = ExperimentResult(
        experiment_id="X", title="t", scale="smoke", seed=0,
        checks=[Check("bad", False)],
    )
    assert not result.passed
    assert "SOME CHECKS FAILED" in result.render()


def test_registry_lists_all_design_experiments():
    ids = experiment_ids()
    for expected in (
        "EXP-E4", "EXP-L3.2", "EXP-L3.9", "EXP-L4.13", "EXP-T1.1", "EXP-T1.2",
        "EXP-T1.3", "EXP-T1.5", "EXP-C1.4", "EXP-T1.6", "EXP-CMP", "EXP-MSD",
        "FIG-1..6",
    ):
        assert expected in ids


def test_registry_unknown_id():
    with pytest.raises(KeyError):
        get_experiment("EXP-NOPE")


def test_registry_modules_have_interface():
    for experiment_id in experiment_ids():
        module = get_experiment(experiment_id)
        assert module.EXPERIMENT_ID == experiment_id
        assert callable(module.run)
        assert callable(module.main)
        assert isinstance(module.TITLE, str)


def test_run_direct_path_experiment_smoke():
    result = run_experiment("EXP-L3.2", scale="smoke", seed=0)
    assert result.passed
    assert result.tables


def test_run_figures_experiment():
    result = run_experiment("FIG-1..6", scale="smoke", seed=0)
    assert result.passed
    assert len(result.plots) == 6


def test_experiment_main_exit_code(capsys):
    module = get_experiment("EXP-L3.2")
    code = module.main(["--scale", "smoke"])
    assert code == 0
    out = capsys.readouterr().out
    assert "EXP-L3.2" in out
