"""Tests for the exact Zipf samplers (Devroye rejection vs bisection)."""

import numpy as np
import pytest
from scipy import special

from repro.distributions.zipf_sampler import (
    JUMP_CLIP,
    bisection_conditional_zipf,
    rejection_conditional_zipf,
)


def _zipf_cdf(alpha: float, i: int) -> float:
    return 1.0 - special.zeta(alpha, i + 1) / special.zeta(alpha, 1)


@pytest.mark.parametrize("alpha", [1.3, 1.8, 2.0, 2.5, 3.0, 4.0])
def test_rejection_matches_exact_cdf(alpha, rng):
    n = 60_000
    samples = rejection_conditional_zipf(np.full(n, alpha), rng, n)
    assert samples.min() >= 1
    for i in (1, 2, 3, 5, 10, 50):
        empirical = float((samples <= i).mean())
        exact = _zipf_cdf(alpha, i)
        # Binomial std is <= 0.5/sqrt(n) ~ 0.002; allow 4 sigma.
        assert abs(empirical - exact) < 0.009, (alpha, i)


@pytest.mark.parametrize("alpha", [1.5, 2.2, 3.5])
def test_bisection_matches_exact_cdf(alpha, rng):
    n = 20_000
    samples = bisection_conditional_zipf(np.full(n, alpha), rng, n)
    assert samples.min() >= 1
    for i in (1, 2, 5, 20):
        empirical = float((samples <= i).mean())
        assert abs(empirical - _zipf_cdf(alpha, i)) < 0.015, (alpha, i)


def test_rejection_and_bisection_agree(rng):
    alpha = 2.5
    n = 40_000
    a = rejection_conditional_zipf(np.full(n, alpha), rng, n)
    b = bisection_conditional_zipf(np.full(n, alpha), rng, n)
    for i in (1, 2, 4, 10):
        assert abs(float((a <= i).mean()) - float((b <= i).mean())) < 0.012


def test_heterogeneous_exponents(rng):
    alphas = np.concatenate([np.full(30_000, 1.5), np.full(30_000, 3.5)])
    samples = rejection_conditional_zipf(alphas, rng, alphas.size)
    heavy = samples[:30_000]
    light = samples[30_000:]
    # Heavier tail => larger p99 by orders of magnitude.
    assert np.quantile(heavy, 0.99) > 10 * np.quantile(light, 0.99)
    assert abs(float((light <= 1).mean()) - _zipf_cdf(3.5, 1)) < 0.01
    assert abs(float((heavy <= 1).mean()) - _zipf_cdf(1.5, 1)) < 0.01


def test_samples_clipped(rng):
    # With alpha barely above 1 the raw Pareto can explode; the sampler
    # must clip rather than overflow.
    alphas = np.full(2_000, 1.05)
    samples = rejection_conditional_zipf(alphas, rng, alphas.size)
    assert samples.max() <= JUMP_CLIP
    assert samples.min() >= 1
    assert samples.dtype == np.int64


def test_empty_batch(rng):
    out = rejection_conditional_zipf(np.array([]), rng, 0)
    assert out.shape == (0,)
