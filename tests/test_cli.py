"""Tests for the repro-experiment command-line interface."""

import numpy as np
import pytest

from repro.cli import (
    EXIT_FAILED,
    EXIT_OK,
    EXIT_USAGE,
    main,
)


def test_list_command(capsys):
    assert main(["list"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "EXP-T1.6" in out
    assert "FIG-1..6" in out


def test_run_single_experiment(capsys):
    assert main(["run", "EXP-L3.2", "--scale", "smoke"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "Lemma 3.2" in out
    assert "ALL CHECKS PASSED" in out


def test_run_with_csv_dump(tmp_path, capsys):
    code = main(
        ["run", "FIG-1..6", "--scale", "smoke", "--csv-dir", str(tmp_path)]
    )
    assert code == EXIT_OK
    files = list(tmp_path.glob("*.csv"))
    assert files, "expected CSV output"
    capsys.readouterr()


def test_run_unknown_experiment_exits_2_with_message(capsys):
    assert main(["run", "EXP-BOGUS"]) == EXIT_USAGE
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "EXP-T1.6" in err  # the known-ids listing helps the user recover


def test_seed_changes_nothing_for_deterministic_experiment(capsys):
    main(["run", "EXP-L3.2", "--scale", "smoke", "--seed", "1"])
    first = capsys.readouterr().out
    main(["run", "EXP-L3.2", "--scale", "smoke", "--seed", "2"])
    second = capsys.readouterr().out
    assert first.replace("seed=1", "seed=S") == second.replace("seed=2", "seed=S")


# ------------------------------------------------------- sweep fault isolation


def test_run_all_survives_one_broken_experiment(monkeypatch, capsys):
    """One raising experiment must not abort the sweep (satellite task)."""
    import repro.cli as cli

    def fake_ids():
        return ["GOOD-1", "BAD-2", "GOOD-3"]

    def fake_run(experiment_id, scale="small", seed=0, runner=None):
        if experiment_id == "BAD-2":
            raise RuntimeError("synthetic harness crash")
        from repro.experiments.common import ExperimentResult

        return ExperimentResult(
            experiment_id=experiment_id, title="stub", scale=scale, seed=seed
        )

    class _Module:
        @staticmethod
        def run(scale="small", seed=0):  # signature probed by the CLI
            raise AssertionError("not called directly")

    monkeypatch.setattr(cli, "experiment_ids", fake_ids)
    monkeypatch.setattr(cli, "run_experiment", fake_run)
    monkeypatch.setattr(cli, "get_experiment", lambda _id: _Module)
    code = main(["run", "all", "--scale", "smoke"])
    captured = capsys.readouterr()
    assert code == EXIT_FAILED
    assert "sweep summary" in captured.out
    assert "ERROR" in captured.out
    assert "2 passed, 0 failed, 1 errored" in captured.out
    assert "synthetic harness crash" in captured.err


# ------------------------------------------------------------- runner wiring


def test_run_with_checkpoint_dir_writes_chunks(tmp_path, capsys):
    code = main(
        [
            "run",
            "EXP-T1.1",
            "--scale",
            "smoke",
            "--checkpoint-dir",
            str(tmp_path),
            "--chunks",
            "2",
        ]
    )
    capsys.readouterr()
    assert code in (EXIT_OK, EXIT_FAILED)  # statistical checks may wobble
    payloads = list(tmp_path.rglob("chunk_*.npz"))
    manifests = list(tmp_path.rglob("manifest.json"))
    assert payloads, "expected durable chunk payloads under the checkpoint dir"
    assert manifests, "expected run manifests under the checkpoint dir"
    assert (tmp_path / "EXP-T1.1").is_dir()


def test_run_with_checkpoint_resume_is_identical(tmp_path, capsys):
    from repro.experiments.registry import run_experiment
    from repro.runner import Runner

    first = run_experiment(
        "EXP-T1.1",
        scale="smoke",
        seed=3,
        runner=Runner(checkpoint_dir=tmp_path, n_chunks=2),
    )
    again = run_experiment(
        "EXP-T1.1",
        scale="smoke",
        seed=3,
        runner=Runner(checkpoint_dir=tmp_path, n_chunks=2, resume=True),
    )
    assert first.render().strip() == again.render().strip()


def test_runner_ignored_for_unsupporting_experiment(capsys):
    # EXP-L3.2 is deterministic/analytic and has no runner parameter; the
    # CLI must say so and still succeed.
    code = main(
        ["run", "EXP-L3.2", "--scale", "smoke", "--workers", "0", "--chunks", "2"]
    )
    captured = capsys.readouterr()
    assert code == EXIT_OK
    assert "does not support the chunked runner" in captured.err


# ---------------------------------------------------------- telemetry wiring


def test_deadline_expiry_exits_degraded_and_logs_deadline_event(tmp_path, capsys):
    """--max-seconds expiry must exit 3 and leave a deadline event in the log."""
    import json

    from repro.cli import EXIT_DEGRADED

    log = tmp_path / "events.jsonl"
    code = main(
        [
            "run",
            "EXP-T1.1",
            "--scale",
            "smoke",
            "--max-seconds",
            "0",
            "--log-json",
            str(log),
        ]
    )
    capsys.readouterr()
    assert code == EXIT_DEGRADED
    events = [json.loads(line) for line in log.read_text().splitlines() if line]
    types = {event["type"] for event in events}
    assert "deadline" in types
    assert "run_start" in types and "run_end" in types
    deadline = next(event for event in events if event["type"] == "deadline")
    assert deadline["experiment"] == "EXP-T1.1"  # bound context travels


def test_report_command_renders_event_log(tmp_path, capsys):
    log = tmp_path / "events.jsonl"
    main(
        [
            "run",
            "EXP-T1.1",
            "--scale",
            "smoke",
            "--max-seconds",
            "0",
            "--log-json",
            str(log),
        ]
    )
    capsys.readouterr()
    assert main(["report", str(log)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "runner invocations" in out
    assert "incidents" in out
    assert "deadline" in out


def test_report_missing_file_exits_usage(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope.jsonl")]) == EXIT_USAGE
    assert "no event log" in capsys.readouterr().err


def _write_log_then_tear(tmp_path, interior_damage=False):
    """A realistic log with, optionally, a corrupt interior line, plus a
    torn final line (the kill-while-appending signature)."""
    from repro import telemetry

    log = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=log)
    try:
        recorder.event("run_start", n_total=100, n_chunks=2, label="t1")
        recorder.event("chunk_end", chunk=0, n=50, seconds=0.1, label="t1")
        recorder.event("run_end", completed=2, total=2, degraded=False, label="t1")
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    if interior_damage:
        lines = log.read_text().splitlines()
        lines[2] = '{"type": "chunk_end", torn interior garbage'
        log.write_text("\n".join(lines) + "\n")
    with open(log, "a", encoding="utf-8") as handle:
        handle.write('{"type":"chunk_end","chu')  # no trailing newline
    return log


def test_report_tolerates_torn_final_line_even_strict(tmp_path, capsys):
    log = _write_log_then_tear(tmp_path)
    assert main(["report", str(log), "--strict"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "runner invocations" in out


def test_report_strict_rejects_interior_damage(tmp_path, capsys):
    log = _write_log_then_tear(tmp_path, interior_damage=True)
    assert main(["report", str(log)]) == EXIT_OK  # default: skip and render
    capsys.readouterr()
    assert main(["report", str(log), "--strict"]) == EXIT_USAGE
    assert "corrupt event" in capsys.readouterr().err


# -------------------------------------------------------------------- watch


def test_watch_once_renders_estimates_from_partial_log(tmp_path, capsys):
    """watch --once on a log still being appended to: estimates render,
    the torn trailing line is ignored, and the exit code is 0."""
    import json

    log = tmp_path / "events.jsonl"
    events = [
        {"type": "log_open", "schema": 2, "t": 0.0},
        {"type": "run_start", "n_total": 400, "n_chunks": 4, "label": "t1", "t": 0.1},
        {"type": "chunk_end", "chunk": 0, "n": 100, "seconds": 0.5, "t": 0.6},
        {
            "type": "estimate", "label": "t1", "chunk": 0, "successes": 30,
            "trials": 100, "p": 0.3, "low": 0.22, "high": 0.4,
            "half_width": 0.09, "rel_half_width": 0.3, "t": 0.6,
        },
        {
            "type": "incident", "kind": "slow_chunk", "label": "t1",
            "chunk": 1, "seconds": 9.0, "median_seconds": 0.5, "t": 9.5,
        },
    ]
    with open(log, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
        handle.write('{"type":"estimate","chu')  # writer still mid-append
    assert main(["watch", str(log), "--once"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "running estimates" in out
    assert "t1" in out and "0.3" in out
    assert "recent incidents" in out and "slow_chunk" in out
    assert "log closed" not in out  # no log_close trailer yet


def test_watch_once_reports_closed_log(tmp_path, capsys):
    from repro import telemetry

    log = tmp_path / "events.jsonl"
    recorder = telemetry.configure(log_path=log)
    try:
        recorder.event("run_start", n_total=10, n_chunks=1, label="t1")
    finally:
        recorder.close()
        telemetry.set_recorder(None)
    assert main(["watch", str(log), "--once"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "log closed -- all writers finished" in out
    assert "no estimate events yet" in out


def test_watch_once_missing_file_exits_2(tmp_path, capsys):
    assert main(["watch", str(tmp_path / "nope.jsonl"), "--once"]) == 2
    assert "no event log" in capsys.readouterr().out


def test_watch_follows_live_appends(tmp_path):
    """The follower picks up lines appended between polls and holds torn
    fragments until their newline arrives."""
    import json

    from repro.telemetry.watch import LogFollower, WatchState, render_watch

    log = tmp_path / "events.jsonl"
    log.write_text('{"type":"log_open","schema":2}\n')
    follower = LogFollower(log)
    state = WatchState()
    state.consume(follower.poll())
    assert state.opens == 1 and not state.finished

    estimate = {
        "type": "estimate", "label": "t1", "chunk": 0, "successes": 5,
        "trials": 50, "p": 0.1, "low": 0.04, "high": 0.21,
        "half_width": 0.085, "rel_half_width": 0.85,
    }
    line = json.dumps(estimate) + "\n"
    with open(log, "a", encoding="utf-8") as handle:
        handle.write(line[:20])  # torn mid-line
    assert follower.poll() == []  # fragment withheld, not mangled
    with open(log, "a", encoding="utf-8") as handle:
        handle.write(line[20:])  # rest of the line lands
        handle.write('{"type":"log_close"}\n')
    state.consume(follower.poll())
    assert "t1" in state.estimates
    assert state.estimates["t1"]["successes"] == 5
    assert state.finished
    frame = render_watch(state)
    assert "log closed" in frame and "t1" in frame


def test_metrics_out_writes_snapshot(tmp_path, capsys):
    import json

    metrics = tmp_path / "metrics.json"
    code = main(
        [
            "run",
            "EXP-T1.1",
            "--scale",
            "smoke",
            "--chunks",
            "2",
            "--metrics-out",
            str(metrics),
        ]
    )
    capsys.readouterr()
    assert code in (EXIT_OK, EXIT_FAILED)  # statistical checks may wobble
    snapshot = json.loads(metrics.read_text())
    assert snapshot["engine.jumps_sampled"]["value"] > 0
    assert snapshot["runner.chunks_completed"]["value"] > 0
    assert snapshot["engine.jump_length_decades"]["type"] == "histogram"


def test_progress_heartbeat_goes_to_stderr(tmp_path, capsys):
    code = main(
        [
            "run",
            "EXP-T1.1",
            "--scale",
            "smoke",
            "--chunks",
            "2",
            "--checkpoint-dir",
            str(tmp_path),
            "--progress",
        ]
    )
    captured = capsys.readouterr()
    assert code in (EXIT_OK, EXIT_FAILED)  # statistical checks may wobble
    assert "run_start" in captured.err
    assert "run_end" in captured.err
    assert "run_start" not in captured.out  # stdout stays a clean report
