"""Tests for the repro-experiment command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "EXP-T1.6" in out
    assert "FIG-1..6" in out


def test_run_single_experiment(capsys):
    assert main(["run", "EXP-L3.2", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Lemma 3.2" in out
    assert "ALL CHECKS PASSED" in out


def test_run_with_csv_dump(tmp_path, capsys):
    code = main(
        ["run", "FIG-1..6", "--scale", "smoke", "--csv-dir", str(tmp_path)]
    )
    assert code == 0
    files = list(tmp_path.glob("*.csv"))
    assert files, "expected CSV output"
    capsys.readouterr()


def test_run_unknown_experiment():
    with pytest.raises(KeyError):
        main(["run", "EXP-BOGUS"])


def test_seed_changes_nothing_for_deterministic_experiment(capsys):
    main(["run", "EXP-L3.2", "--scale", "smoke", "--seed", "1"])
    first = capsys.readouterr().out
    main(["run", "EXP-L3.2", "--scale", "smoke", "--seed", "2"])
    second = capsys.readouterr().out
    assert first.replace("seed=1", "seed=S") == second.replace("seed=2", "seed=S")
