"""Tests for the figure renderers (deterministic geometry)."""

from repro.lattice.ascii_art import (
    all_figures,
    figure_1,
    figure_2,
    figure_3,
    figure_4,
    figure_6,
    render_ball,
    render_box,
    render_grid,
    render_ring,
    render_trajectory,
)
from repro.lattice.rings import ball_size, box_size, ring_size


def test_render_grid_dimensions():
    text = render_grid({}, radius=2)
    lines = text.splitlines()
    assert len(lines) == 5
    assert all(len(line.split(" ")) == 5 for line in lines)


def test_render_grid_orientation():
    # y axis points up: mark at (0, 2) must be in the first row.
    text = render_grid({(0, 2): "X"}, radius=2)
    assert "X" in text.splitlines()[0]


def test_render_ring_counts():
    d = 4
    text = render_ring(d)
    # The center ('u') is not on the ring, so all 4d ring nodes are 'o'.
    assert text.count("o") == ring_size(d)
    assert text.count("u") == 1


def test_render_ball_counts():
    d = 3
    text = render_ball(d)
    assert text.count("o") == ball_size(d) - 1  # center replaced by 'u'
    assert text.count("u") == 1


def test_render_box_counts():
    d = 2
    text = render_box(d)
    assert text.count("o") == box_size(d) - 1
    assert text.count("u") == 1


def test_figure_1_has_three_panels():
    text = figure_1(3)
    assert "R_3(u)" in text and "B_3(u)" in text and "Q_3(u)" in text


def test_figure_2_marks_endpoints():
    text = figure_2((0, 0), (5, 3), seed=1)
    assert "u" in text and "v" in text
    assert "direct path:" in text


def test_figure_3_disjoint_boxes():
    text = figure_3(2)
    for marker in ("Q", "1", "2", "3"):
        assert text.count(marker) == (2 * 2 + 1) ** 2


def test_figure_4_two_rings():
    text = figure_4(d=5, i=3)
    assert text.count("O") == ring_size(5)
    assert text.count("i") == ring_size(3)


def test_figure_6_markers():
    text = figure_6(8)
    assert text.count("T") == 1 and text.count("0") == 1
    assert "b" in text and "#" in text


def test_all_figures_complete():
    figures = all_figures()
    assert len(figures) == 6
    names = [name for name, _ in figures]
    assert any("Figure 1" in n for n in names)
    assert any("Figure 6" in n for n in names)
    assert all(rendering.strip() for _, rendering in figures)


def test_render_trajectory():
    path = [(0, 0), (1, 0), (1, 1), (2, 1)]
    text = render_trajectory(path, target=(2, 1))
    assert "S" in text and "T" in text


def test_render_trajectory_empty_path_rejected():
    import pytest

    with pytest.raises(ValueError):
        render_trajectory([])
